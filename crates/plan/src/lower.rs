//! Lowering a bound `SELECT` into a physical plan.
//!
//! The lowering mirrors the original monolithic executor pipeline so
//! that results (and plan shapes) stay byte-identical: constant
//! conjuncts prune up front, tables join left-to-right in FROM order
//! with per-table access-path selection, and the query's shaping
//! clauses (`GROUP BY`/`HAVING`/`ORDER BY`/`DISTINCT`/`LIMIT`) stack on
//! top of the join tree.
//!
//! Two statistics-driven refinements sit on top of that skeleton:
//!
//! * **Fast paths** (`opts.fast_paths`, on by default): single-table
//!   query shapes with a provably equivalent shortcut lower to
//!   dedicated operators — [`PlanNode::CountStar`],
//!   [`PlanNode::IndexMinMax`] and [`PlanNode::TopNIndex`] — instead of
//!   the general pipeline. Each shortcut's side conditions are checked
//!   here and re-derived independently by the analyzer's fast-path
//!   soundness pass.
//! * **Cost-based join order** (`opts.cost_based_join_order`, off by
//!   default): a greedy order by estimated intermediate size replaces
//!   FROM order. Off by default because FROM-order plans also pin the
//!   output *row order* of unsorted queries; the recency planner opts
//!   in for its generated subqueries, whose output order is defined by
//!   an explicit sort.

use crate::access::{choose_access_path, AccessPath, ExecOptions};
use crate::cost::{join_rows, TableCost};
use crate::ir::{PhysicalPlan, PlanNode};
use std::collections::BTreeSet;
use trac_expr::bound::AggFunc;
use trac_expr::{
    eval_predicate, BoundExpr, BoundSelect, BoundTable, ColRef, KernelCert, LaneCert, Projection,
    Truth,
};
use trac_sql::BinaryOp;
use trac_storage::{ColumnStats, ReadTxn};
use trac_types::{DataType, Result};

/// Splits nested `AND`s into a conjunct list.
pub fn split_and(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// If `c` is `pos.col = other.col` with `other` already joined, returns
/// `(pos column, outer column ref)`.
pub fn equi_key(c: &BoundExpr, pos: usize, joined: &BTreeSet<usize>) -> Option<(usize, ColRef)> {
    let BoundExpr::Binary {
        op: BinaryOp::Eq,
        lhs,
        rhs,
    } = c
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (BoundExpr::Column(a), BoundExpr::Column(b)) => {
            if a.table == pos && joined.contains(&b.table) {
                Some((a.column, *b))
            } else if b.table == pos && joined.contains(&a.table) {
                Some((b.column, *a))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Builds the access leaf for one table, with statistics-based row and
/// cost estimates.
fn make_leaf(
    bt: &BoundTable,
    pos: usize,
    access: AccessPath,
    filter: Vec<BoundExpr>,
    tc: &TableCost,
) -> PlanNode {
    let filtered = tc.filtered_rows(&filter, pos);
    match access {
        AccessPath::SeqScan => PlanNode::Scan {
            table: bt.clone(),
            pos,
            filter,
            est_rows: filtered,
            cost: tc.seq_cost(),
        },
        AccessPath::IndexProbe { column, keys } => {
            let matched = tc.probe_rows(column, keys.len());
            PlanNode::IndexLookup {
                table: bt.clone(),
                pos,
                column,
                keys,
                filter,
                est_rows: filtered.min(matched),
                cost: matched.max(1),
            }
        }
    }
}

/// Derives the typed-kernel certificate for every lane of `q`'s FROM
/// tables from the schema and the write-time catalog statistics:
///
/// * `ty` — the declared column type; mono-typed by construction, since
///   write-time coercion widens every stored value to it.
/// * `non_null` — declared `NOT NULL`, or a write-time null count of
///   zero (the counter only increments, so zero proves no NULL was ever
///   inserted).
/// * `nan_free` — trivially true for non-floats; for floats, proven by
///   NaN-free catalog min/max bounds (the storage total order forces
///   any inserted NaN into one of the bounds, which never shrink).
///
/// Missing statistics mean the table never saw an insert, so both stats
/// proofs hold vacuously. The analyzer's typeflow pass re-derives all
/// of this and reports `TRAC023` for any claim it cannot prove.
fn compute_kernel_cert(txn: &ReadTxn, q: &BoundSelect) -> KernelCert {
    let mut cert = KernelCert::default();
    for (pos, bt) in q.tables.iter().enumerate() {
        let stats = txn.table_stats(bt.id);
        for (col, def) in bt.schema.columns.iter().enumerate() {
            let cs = stats.column(col);
            cert.insert(
                pos,
                col,
                LaneCert {
                    ty: def.ty,
                    non_null: !def.nullable || cs.is_none_or(ColumnStats::proves_non_null),
                    nan_free: def.ty != DataType::Float
                        || cs.is_none_or(ColumnStats::proves_nan_free),
                },
            );
        }
    }
    cert
}

/// True when SQL comparison (`sql_cmp`, NaN incomparable) and the
/// index's storage total order (`total_cmp`) agree on `column`: any
/// non-float type, or a float column whose catalog statistics prove it
/// NaN-free (TRAC026) — without NaNs the two orders coincide.
fn index_order_is_sql_order(txn: &ReadTxn, bt: &BoundTable, column: usize) -> bool {
    bt.schema.column(column).ty != DataType::Float
        || txn
            .table_stats(bt.id)
            .column(column)
            .is_none_or(ColumnStats::proves_nan_free)
}

/// Tries to lower `q` to a certified fast-path plan. Only single-table
/// queries qualify; every side condition checked here is re-derived by
/// the analyzer's fast-path soundness pass (TRAC021/TRAC022).
fn try_fast_path(
    txn: &ReadTxn,
    q: &BoundSelect,
    pending: &[BoundExpr],
    tc: &TableCost,
    opts: ExecOptions,
) -> Option<PhysicalPlan> {
    let [bt] = q.tables.as_slice() else {
        return None;
    };
    let columns = q.output_names();
    // Aggregate shortcuts: one global group, nothing filtered, nothing
    // shaped — the storage layer can answer directly.
    let unshaped = q.group_by.is_empty()
        && q.having.is_none()
        && !q.distinct
        && q.order_by.is_empty()
        && q.limit != Some(0);
    if unshaped && pending.is_empty() {
        if let [Projection::Aggregate { func, arg, name }] = q.projections.as_slice() {
            match (func, arg) {
                // COUNT(*): the MVCC-visible row counter is the answer.
                (AggFunc::Count, None) => {
                    return Some(PhysicalPlan {
                        root: PlanNode::CountStar {
                            table: bt.clone(),
                            name: name.clone(),
                            est_rows: tc.rows,
                            cost: 1,
                        },
                        columns,
                        cert: KernelCert::default(),
                    });
                }
                // MIN/MAX(col) over an indexed column whose index order
                // agrees with SQL comparison: any non-float column, or
                // a float column the catalog statistics prove NaN-free
                // (TRAC026). Both orders skip NULLs, so nullable
                // columns are fine here.
                (AggFunc::Min | AggFunc::Max, Some(BoundExpr::Column(cr)))
                    if cr.table == 0
                        && txn.has_index(bt.id, cr.column)
                        && index_order_is_sql_order(txn, bt, cr.column) =>
                {
                    return Some(PhysicalPlan {
                        root: PlanNode::IndexMinMax {
                            table: bt.clone(),
                            column: cr.column,
                            func: *func,
                            name: name.clone(),
                            est_rows: 1,
                            cost: 1,
                        },
                        columns,
                        cert: KernelCert::default(),
                    });
                }
                _ => {}
            }
        }
    }
    // Top-N shortcut: `ORDER BY col [DESC] LIMIT n` over an indexed
    // column replaces the full Sort with an early-stopping ordered
    // index walk. The column must be declared NOT NULL — the index
    // never stores NULL keys, so a nullable column would drop rows the
    // real sort keeps. (The guarantee comes from the schema, never from
    // the mutable statistics.) Byte-identity additionally needs the
    // replaced pipeline to read in slot order: index postings within
    // one key are in insertion (slot) order, exactly the stable sort's
    // tie order over a slot-order scan — but a general plan that would
    // *probe* an index streams rows in key order, so ties could resolve
    // differently. Decline the walk whenever the cost model would pick
    // a probe (which is then also the cheaper general plan).
    if !q.is_aggregate() && !q.distinct {
        if let (Some(n), [(BoundExpr::Column(cr), desc)]) = (q.limit, q.order_by.as_slice()) {
            if n >= 1
                && cr.table == 0
                && txn.has_index(bt.id, cr.column)
                && !bt.schema.column(cr.column).nullable
                && matches!(
                    choose_access_path(txn, bt.id, 0, pending, opts),
                    AccessPath::SeqScan
                )
            {
                let filter = pending.to_vec();
                let filtered = tc.filtered_rows(&filter, 0);
                let est_rows = filtered.min(n);
                // Expected walk depth: n survivors at the filter's
                // selectivity, capped by the table size.
                let cost = n
                    .saturating_mul(tc.rows)
                    .checked_div(filtered)
                    .map_or(tc.seq_cost(), |c| c.clamp(1, tc.seq_cost()));
                let root = PlanNode::TopNIndex {
                    table: bt.clone(),
                    pos: 0,
                    column: cr.column,
                    desc: *desc,
                    n,
                    filter,
                    est_rows,
                    cost,
                };
                let root = PlanNode::Project {
                    input: Box::new(root),
                    projections: q.projections.clone(),
                };
                return Some(PhysicalPlan {
                    root: PlanNode::Limit {
                        input: Box::new(root),
                        n,
                    },
                    columns,
                    cert: KernelCert::default(),
                });
            }
        }
    }
    None
}

/// Greedy cost-based join order: start from the smallest estimated
/// filtered table, then repeatedly attach the table minimizing the
/// estimated intermediate result (equi-joins divide by key NDV, cross
/// joins multiply). Ties break toward FROM order.
fn greedy_order(
    pending: &[BoundExpr],
    costs: &[TableCost],
    table_conjuncts: &[Vec<BoundExpr>],
) -> Vec<usize> {
    let n = costs.len();
    let filtered: Vec<u64> = (0..n)
        .map(|pos| costs[pos].filtered_rows(&table_conjuncts[pos], pos))
        .collect();
    let first = (0..n).min_by_key(|&pos| filtered[pos]).unwrap_or(0);
    let mut order = vec![first];
    let mut joined = BTreeSet::from([first]);
    let mut cur_est = filtered[first];
    while order.len() < n {
        let mut best: Option<(u64, usize)> = None;
        for pos in (0..n).filter(|pos| !joined.contains(pos)) {
            let key_ndv = pending.iter().find_map(|c| equi_key(c, pos, &joined)).map(
                |(inner_col, outer_key)| {
                    costs[pos]
                        .ndv(inner_col)
                        .max(costs[outer_key.table].ndv(outer_key.column))
                },
            );
            let est = join_rows(cur_est, filtered[pos], key_ndv);
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, pos));
            }
        }
        let (est, pos) = best.expect("candidate remains");
        cur_est = est;
        joined.insert(pos);
        order.push(pos);
    }
    order
}

/// Lowers a bound `SELECT` into a physical plan against `txn`'s
/// snapshot. The plan is deterministic given the query, the options and
/// the catalog (which indexes exist); row-count and cost estimates
/// additionally reflect the catalog's write-time statistics.
pub fn plan_select(txn: &ReadTxn, q: &BoundSelect, opts: ExecOptions) -> Result<PhysicalPlan> {
    // 1. Split the predicate into top-level conjuncts.
    let mut conjuncts: Vec<BoundExpr> = Vec::new();
    if let Some(p) = &q.predicate {
        split_and(p, &mut conjuncts);
    }
    // 2. Constant conjuncts decide emptiness up front.
    let mut remaining: Vec<BoundExpr> = Vec::new();
    let mut trivially_empty = false;
    for c in conjuncts {
        if c.references().is_empty() {
            if eval_predicate(&c, &[])? != Truth::True {
                trivially_empty = true;
            }
        } else {
            remaining.push(c);
        }
    }
    // Per-table statistics snapshots drive every estimate below.
    let costs: Vec<TableCost> = q
        .tables
        .iter()
        .map(|bt| TableCost::new(txn, bt.id))
        .collect();
    // Typeflow kernel certificate: derived once per plan so the knob
    // changes the lowered artifact (plan caches must key on it).
    let cert = if opts.typed_kernels {
        compute_kernel_cert(txn, q)
    } else {
        KernelCert::default()
    };
    // 3. Fast paths: single-table shapes with a certified shortcut skip
    // the general pipeline (and its parallel decoration) entirely.
    if opts.fast_paths && !trivially_empty {
        if let Some(first) = costs.first() {
            if let Some(mut plan) = try_fast_path(txn, q, &remaining, first, opts) {
                plan.cert = cert;
                return Ok(plan);
            }
        }
    }
    // 4. Join order: FROM order by default; greedy by estimated
    // intermediate size when the cost-based knob is on. Reordered plans
    // stay serial — the morsel pipeline assumes the FROM-order driving
    // leaf — and are flagged for the columnar engine, whose joins write
    // each table's rows at that table's own tuple slot.
    let table_conjuncts: Vec<Vec<BoundExpr>> = (0..q.tables.len())
        .map(|pos| {
            remaining
                .iter()
                .filter(|c| c.tables() == BTreeSet::from([pos]))
                .cloned()
                .collect()
        })
        .collect();
    let order: Vec<usize> = if opts.cost_based_join_order && q.tables.len() > 1 && !trivially_empty
    {
        greedy_order(&remaining, &costs, &table_conjuncts)
    } else {
        (0..q.tables.len()).collect()
    };
    let reordered = order.iter().enumerate().any(|(i, &pos)| i != pos);
    // Parallel lowering: with `threads > 1` the driving leaf is wrapped
    // in an Exchange (morsel distribution) and the finished relational
    // tree in a Gather (morsel-ordered merge), keeping results
    // byte-identical to the serial plan. Statically-empty plans have
    // nothing to parallelize.
    let parallel = opts.threads > 1 && !q.tables.is_empty() && !trivially_empty && !reordered;
    let mut pending: Vec<Option<BoundExpr>> = remaining.into_iter().map(Some).collect();
    let mut root = if trivially_empty {
        PlanNode::Empty {
            bindings: q.tables.iter().map(|t| t.binding.clone()).collect(),
        }
    } else {
        // 5. Join tables in the chosen order, building a left-deep tree.
        let mut joined: BTreeSet<usize> = BTreeSet::new();
        let mut tree: Option<PlanNode> = None;
        let mut tree_cost: u64 = 0;
        for &pos in &order {
            let bt = &q.tables[pos];
            let tc = &costs[pos];
            // Conjuncts that become applicable once `pos` joins.
            let mut applicable: Vec<BoundExpr> = Vec::new();
            for slot in &mut pending {
                if let Some(c) = slot.take() {
                    let ready = c.tables().iter().all(|t| *t == pos || joined.contains(t));
                    if ready {
                        applicable.push(c);
                    } else {
                        *slot = Some(c);
                    }
                }
            }
            // Pick an equi-join conjunct usable as a key: pos.col = joined.col.
            let equi = applicable.iter().find_map(|c| equi_key(c, pos, &joined));
            let access = choose_access_path(txn, bt.id, pos, &table_conjuncts[pos], opts);
            joined.insert(pos);
            let Some(outer) = tree else {
                // First table: the leaf is the tree. `applicable` here is
                // exactly the single-table conjuncts, already in the leaf.
                let mut leaf = make_leaf(bt, pos, access, table_conjuncts[pos].clone(), tc);
                tree_cost = leaf.est_cost().unwrap_or(1);
                if parallel {
                    leaf = PlanNode::Exchange {
                        input: Box::new(leaf),
                        threads: opts.threads,
                        batch: opts.batch_size.max(1),
                    };
                }
                tree = Some(leaf);
                continue;
            };
            let outer_est = outer.est_rows().unwrap_or(0);
            let join_filter = applicable;
            let index_nl = equi.filter(|(inner_col, _)| {
                opts.enable_index_scan
                    && matches!(access, AccessPath::SeqScan)
                    && txn.has_index(bt.id, *inner_col)
            });
            tree = Some(if let Some((inner_col, outer_key)) = index_nl {
                let est_rows = join_rows(outer_est, tc.rows, Some(tc.ndv(inner_col)));
                let cost = tree_cost.saturating_add(outer_est).saturating_add(est_rows);
                tree_cost = cost;
                PlanNode::IndexNLJoin {
                    outer: Box::new(outer),
                    table: bt.clone(),
                    pos,
                    inner_col,
                    outer_key,
                    filter: join_filter,
                    est_rows,
                    cost,
                }
            } else {
                let inner = make_leaf(bt, pos, access, table_conjuncts[pos].clone(), tc);
                let inner_est = inner.est_rows().unwrap_or(0);
                let inner_cost = inner.est_cost().unwrap_or(1);
                if let Some((inner_col, outer_key)) = equi.filter(|_| opts.enable_hash_join) {
                    let key_ndv = tc
                        .ndv(inner_col)
                        .max(costs[outer_key.table].ndv(outer_key.column));
                    let est_rows = join_rows(outer_est, inner_est, Some(key_ndv));
                    let cost = tree_cost
                        .saturating_add(inner_cost)
                        .saturating_add(outer_est)
                        .saturating_add(est_rows);
                    tree_cost = cost;
                    PlanNode::HashJoin {
                        outer: Box::new(outer),
                        inner: Box::new(inner),
                        inner_col,
                        outer_key,
                        filter: join_filter,
                        est_rows,
                        cost,
                    }
                } else {
                    let est_rows = join_rows(outer_est, inner_est, None);
                    let cost = tree_cost
                        .saturating_add(inner_cost)
                        .saturating_add(est_rows);
                    tree_cost = cost;
                    PlanNode::NLJoin {
                        outer: Box::new(outer),
                        inner: Box::new(inner),
                        filter: join_filter,
                        est_rows,
                        cost,
                    }
                }
            });
        }
        tree.unwrap_or(PlanNode::Empty {
            bindings: Vec::new(),
        })
    };
    // 6. Leftover conjuncts (defensive; all should have been applied).
    let leftover: Vec<BoundExpr> = pending.into_iter().flatten().collect();
    if !leftover.is_empty() {
        root = PlanNode::Filter {
            input: Box::new(root),
            predicate: leftover,
        };
    }
    if parallel {
        root = PlanNode::Gather {
            input: Box::new(root),
            morsel_ordered: true,
        };
    }
    // 7. Shape the output: aggregation absorbs HAVING/ORDER BY/LIMIT
    // (they act on groups); the scalar stack applies them separately.
    let columns = q.output_names();
    let root = if q.is_aggregate() {
        PlanNode::Aggregate {
            input: Box::new(root),
            group_by: q.group_by.clone(),
            projections: q.projections.clone(),
            having: q.having.clone(),
            order_by: q.order_by.clone(),
            limit: q.limit,
        }
    } else {
        if !q.order_by.is_empty() {
            root = PlanNode::Sort {
                input: Box::new(root),
                keys: q.order_by.clone(),
            };
        }
        root = PlanNode::Project {
            input: Box::new(root),
            projections: q.projections.clone(),
        };
        if q.distinct {
            root = PlanNode::Distinct {
                input: Box::new(root),
            };
        }
        if let Some(n) = q.limit {
            root = PlanNode::Limit {
                input: Box::new(root),
                n,
            };
        }
        root
    };
    Ok(PhysicalPlan {
        root,
        columns,
        cert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trac_expr::bind_select;
    use trac_sql::parse_select;
    use trac_storage::{ColumnDef, Database, TableSchema};
    use trac_types::{DataType, Value};

    fn setup() -> Database {
        let db = Database::new();
        for (name, cols) in [
            ("activity", vec!["mach_id", "value"]),
            ("routing", vec!["mach_id", "neighbor"]),
        ] {
            db.create_table(
                TableSchema::new(
                    name,
                    cols.iter()
                        .map(|c| ColumnDef::new(*c, DataType::Text))
                        .collect(),
                    Some("mach_id"),
                )
                .unwrap(),
            )
            .unwrap();
            db.create_index(name, "mach_id").unwrap();
        }
        let t = db.begin_read().table_id("activity").unwrap();
        db.with_write(|w| {
            w.insert(t, vec![Value::text("m1"), Value::text("idle")])?;
            w.insert(t, vec![Value::text("m2"), Value::text("busy")])
        })
        .unwrap();
        db
    }

    fn plan(db: &Database, sql: &str, opts: ExecOptions) -> PhysicalPlan {
        let txn = db.begin_read();
        let bound = bind_select(&txn, &parse_select(sql).unwrap()).unwrap();
        plan_select(&txn, &bound, opts).unwrap()
    }

    #[test]
    fn single_table_probe_plan() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT value FROM activity WHERE mach_id = 'm1'",
            ExecOptions::default(),
        );
        assert_eq!(p.columns, vec!["value".to_string()]);
        let PlanNode::Project { input, .. } = &p.root else {
            panic!("expected Project root: {:?}", p.root);
        };
        let PlanNode::IndexLookup { keys, est_rows, .. } = input.as_ref() else {
            panic!("expected IndexLookup leaf: {input:?}");
        };
        assert_eq!(keys, &[Value::text("m1")]);
        assert_eq!(*est_rows, 1);
        assert_eq!(p.table_steps()[0].1, "IndexProbe(col#0, 1 keys)");
    }

    #[test]
    fn equi_join_lowers_to_index_nl_join() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT A.mach_id FROM Routing R, Activity A WHERE R.neighbor = A.mach_id",
            ExecOptions::default(),
        );
        let PlanNode::Project { input, .. } = &p.root else {
            panic!("expected Project root");
        };
        assert!(
            matches!(input.as_ref(), PlanNode::IndexNLJoin { .. }),
            "expected IndexNLJoin: {input:?}"
        );
        assert_eq!(p.table_steps()[1].1, "IndexNLJoin(col#0)");
        assert_eq!(p.operator_counts()["IndexNLJoin"], 1);
    }

    #[test]
    fn options_select_join_strategy() {
        let db = setup();
        let sql = "SELECT A.mach_id FROM Routing R, Activity A WHERE R.neighbor = A.mach_id";
        let no_index = ExecOptions {
            enable_index_scan: false,
            enable_hash_join: true,
            ..Default::default()
        };
        let p = plan(&db, sql, no_index);
        assert_eq!(p.operator_counts()["HashJoin"], 1);
        let nested_only = ExecOptions {
            enable_index_scan: false,
            enable_hash_join: false,
            ..Default::default()
        };
        let p = plan(&db, sql, nested_only);
        assert_eq!(p.operator_counts()["NLJoin"], 1);
        // The join conjunct rides on the join node either way.
        let PlanNode::Project { input, .. } = &p.root else {
            panic!("expected Project root");
        };
        let PlanNode::NLJoin { filter, .. } = input.as_ref() else {
            panic!("expected NLJoin: {input:?}");
        };
        assert_eq!(filter.len(), 1);
    }

    #[test]
    fn constant_false_lowers_to_empty() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT mach_id FROM activity WHERE 1 = 2",
            ExecOptions::default(),
        );
        assert_eq!(
            p.table_steps(),
            vec![("activity".to_string(), "pruned (empty input)".to_string())]
        );
    }

    #[test]
    fn shaping_stack_order() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT DISTINCT value FROM activity ORDER BY value LIMIT 3",
            ExecOptions::default(),
        );
        // Limit(Distinct(Project(Sort(Scan)))) — DISTINCT before LIMIT.
        let PlanNode::Limit { input, n: 3 } = &p.root else {
            panic!("expected Limit root: {:?}", p.root);
        };
        let PlanNode::Distinct { input } = input.as_ref() else {
            panic!("expected Distinct");
        };
        let PlanNode::Project { input, .. } = input.as_ref() else {
            panic!("expected Project");
        };
        assert!(matches!(input.as_ref(), PlanNode::Sort { .. }));
        let rendered = p.render();
        assert!(rendered.starts_with("Limit (3)"), "{rendered}");
        assert!(rendered.contains("est 2 rows"), "{rendered}");
    }

    #[test]
    fn parallel_lowering_wraps_exchange_and_gather() {
        let db = setup();
        let sql = "SELECT value FROM activity WHERE mach_id = 'm1'";
        let p = plan(&db, sql, ExecOptions::default().with_parallelism(4, 256));
        let PlanNode::Project { input, .. } = &p.root else {
            panic!("expected Project root: {:?}", p.root);
        };
        let PlanNode::Gather {
            input,
            morsel_ordered: true,
        } = input.as_ref()
        else {
            panic!("expected morsel-ordered Gather below Project: {input:?}");
        };
        let PlanNode::Exchange {
            input,
            threads: 4,
            batch: 256,
        } = input.as_ref()
        else {
            panic!("expected Exchange(threads=4, batch=256): {input:?}");
        };
        assert!(matches!(input.as_ref(), PlanNode::IndexLookup { .. }));
        // Serial options keep serial plan shapes byte-identical.
        let p = plan(&db, sql, ExecOptions::default());
        assert!(!p.operator_counts().contains_key("Gather"));
        assert!(!p.operator_counts().contains_key("Exchange"));
    }

    #[test]
    fn parallel_join_keeps_inner_leaves_outside_exchange() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT A.mach_id FROM Routing R, Activity A WHERE R.neighbor = A.mach_id",
            ExecOptions::default().with_parallelism(2, 128),
        );
        let PlanNode::Project { input, .. } = &p.root else {
            panic!("expected Project root");
        };
        let PlanNode::Gather { input, .. } = input.as_ref() else {
            panic!("expected Gather below Project: {input:?}");
        };
        // The join sits inside the parallel region; only the driving
        // leaf is exchange-wrapped.
        let PlanNode::IndexNLJoin { outer, .. } = input.as_ref() else {
            panic!("expected IndexNLJoin region root: {input:?}");
        };
        assert!(matches!(outer.as_ref(), PlanNode::Exchange { .. }));
    }

    #[test]
    fn constant_false_parallel_plan_stays_empty() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT mach_id FROM activity WHERE 1 = 2",
            ExecOptions::default().with_parallelism(8, 64),
        );
        assert!(!p.operator_counts().contains_key("Gather"));
        assert_eq!(p.operator_counts()["Empty"], 1);
    }

    #[test]
    fn aggregates_absorb_group_shaping() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT value, COUNT(*) AS n FROM activity GROUP BY value \
             HAVING COUNT(*) > 0 ORDER BY value LIMIT 5",
            ExecOptions::default(),
        );
        let PlanNode::Aggregate {
            group_by,
            having,
            limit,
            ..
        } = &p.root
        else {
            panic!("expected Aggregate root: {:?}", p.root);
        };
        assert_eq!(group_by.len(), 1);
        assert!(having.is_some());
        assert_eq!(*limit, Some(5));
        assert_eq!(p.operator_counts()["Aggregate"], 1);
    }

    #[test]
    fn count_star_takes_the_fast_path() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT COUNT(*) AS n FROM activity",
            ExecOptions::default(),
        );
        let PlanNode::CountStar { name, est_rows, .. } = &p.root else {
            panic!("expected CountStar root: {:?}", p.root);
        };
        assert_eq!(name, "n");
        assert_eq!(*est_rows, 2);
        assert_eq!(p.table_steps()[0].1, "CountStar fast path");
        assert!(p.render().contains("[fast-path: storage row count]"));
        // Any disqualifier falls back to the general Aggregate pipeline:
        // a predicate, a second table, or the knob being off.
        let p = plan(
            &db,
            "SELECT COUNT(*) AS n FROM activity WHERE value = 'idle'",
            ExecOptions::default(),
        );
        assert!(matches!(p.root, PlanNode::Aggregate { .. }));
        let p = plan(
            &db,
            "SELECT COUNT(*) AS n FROM activity, routing",
            ExecOptions::default(),
        );
        assert!(matches!(p.root, PlanNode::Aggregate { .. }));
        let off = ExecOptions {
            fast_paths: false,
            ..Default::default()
        };
        let p = plan(&db, "SELECT COUNT(*) AS n FROM activity", off);
        assert!(matches!(p.root, PlanNode::Aggregate { .. }));
    }

    #[test]
    fn min_max_fast_path_requires_an_index() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT MIN(mach_id) AS lo FROM activity",
            ExecOptions::default(),
        );
        let PlanNode::IndexMinMax {
            column: 0, func, ..
        } = &p.root
        else {
            panic!("expected IndexMinMax root: {:?}", p.root);
        };
        assert_eq!(*func, AggFunc::Min);
        assert!(p.render().contains("[fast-path: ordered index probe]"));
        // `value` has no index: general pipeline.
        let p = plan(
            &db,
            "SELECT MAX(value) AS hi FROM activity",
            ExecOptions::default(),
        );
        assert!(matches!(p.root, PlanNode::Aggregate { .. }));
    }

    #[test]
    fn min_max_fast_path_admits_nan_free_floats() {
        let db = setup();
        db.create_table(
            TableSchema::new(
                "m",
                vec![
                    ColumnDef::new("sid", DataType::Text),
                    ColumnDef::new("temp", DataType::Float).nullable(),
                ],
                Some("sid"),
            )
            .unwrap(),
        )
        .unwrap();
        db.create_index("m", "temp").unwrap();
        let tid = db.begin_read().table_id("m").unwrap();
        db.with_write(|w| {
            w.insert(tid, vec![Value::text("s1"), Value::Float(2.5)])?;
            w.insert(tid, vec![Value::text("s2"), Value::Float(-1.0)])
        })
        .unwrap();
        // Stats prove the float lane NaN-free: TRAC026 admits the walk.
        let sql = "SELECT MIN(temp) AS lo FROM m";
        let p = plan(&db, sql, ExecOptions::default());
        assert!(
            matches!(p.root, PlanNode::IndexMinMax { .. }),
            "expected IndexMinMax for NaN-free float: {:?}",
            p.root
        );
        // A NaN insert poisons the proof permanently: general pipeline.
        db.with_write(|w| w.insert(tid, vec![Value::text("s3"), Value::Float(f64::NAN)]))
            .unwrap();
        let p = plan(&db, sql, ExecOptions::default());
        assert!(
            matches!(p.root, PlanNode::Aggregate { .. }),
            "expected Aggregate once NaN observed: {:?}",
            p.root
        );
    }

    #[test]
    fn lowering_attaches_kernel_certificates() {
        let db = setup();
        let sql = "SELECT value FROM activity WHERE mach_id = 'm1'";
        let p = plan(&db, sql, ExecOptions::default());
        // Both TEXT lanes of `activity` are certified; the schema
        // declares them NOT NULL, so no null bitmap is needed.
        let lane = p.cert.get(0, 0).expect("lane (0,0) certified");
        assert_eq!(lane.ty, DataType::Text);
        assert!(lane.non_null && lane.nan_free);
        assert_eq!(p.cert.len(), 2);
        assert!(
            p.render().contains("[typed:text,text]"),
            "missing EXPLAIN marker: {}",
            p.render()
        );
        // The knob strips the certificate (boxed reference execution).
        let off = ExecOptions {
            typed_kernels: false,
            ..Default::default()
        };
        let p = plan(&db, sql, off);
        assert!(p.cert.is_empty());
        assert!(!p.render().contains("[typed:"), "{}", p.render());
    }

    #[test]
    fn order_by_limit_takes_the_top_n_index_path() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT value FROM activity WHERE value = 'idle' ORDER BY mach_id DESC LIMIT 1",
            ExecOptions::default(),
        );
        let PlanNode::Limit { input, n: 1 } = &p.root else {
            panic!("expected Limit root: {:?}", p.root);
        };
        let PlanNode::Project { input, .. } = input.as_ref() else {
            panic!("expected Project under Limit");
        };
        let PlanNode::TopNIndex {
            column: 0,
            desc: true,
            n: 1,
            filter,
            ..
        } = input.as_ref()
        else {
            panic!("expected TopNIndex leaf: {input:?}");
        };
        assert_eq!(filter.len(), 1);
        assert!(p.render().contains("[fast-path: ordered index walk]"));
        // Without a LIMIT (or on an unindexed key) the Sort stays.
        let p = plan(
            &db,
            "SELECT value FROM activity ORDER BY mach_id",
            ExecOptions::default(),
        );
        assert_eq!(p.operator_counts()["Sort"], 1);
        let p = plan(
            &db,
            "SELECT value FROM activity ORDER BY value LIMIT 1",
            ExecOptions::default(),
        );
        assert_eq!(p.operator_counts()["Sort"], 1);
    }

    #[test]
    fn cost_based_ordering_starts_from_the_smallest_table() {
        let db = setup();
        // routing is empty, activity has 2 rows; FROM order says
        // activity first, the cost model says routing first.
        let sql = "SELECT A.value FROM Activity A, Routing R WHERE A.mach_id = R.mach_id";
        let p = plan(&db, sql, ExecOptions::default());
        assert_eq!(p.table_steps()[0].0, "A");
        let opts = ExecOptions {
            cost_based_join_order: true,
            ..Default::default()
        };
        let p = plan(&db, sql, opts);
        assert_eq!(p.table_steps()[0].0, "R", "{:?}", p.table_steps());
        // Reordered plans never get parallel decoration.
        let p = plan(&db, sql, opts.with_parallelism(4, 64));
        assert!(!p.operator_counts().contains_key("Gather"));
    }

    #[test]
    fn explain_carries_estimates_and_costs() {
        let db = setup();
        let p = plan(
            &db,
            "SELECT value FROM activity WHERE mach_id = 'm1'",
            ExecOptions::default(),
        );
        let rendered = p.render();
        assert!(
            rendered.contains("(est 1 rows, cost 1)"),
            "missing cost annotation: {rendered}"
        );
    }
}
