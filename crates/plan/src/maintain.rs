//! Maintenance licenses for delta-folded recency subqueries.
//!
//! A prepared recency plan can keep a **maintained report**: instead of
//! re-executing every generated subquery per report, the session folds
//! the storage layer's typed change stream into per-subquery member
//! sets. That fold is only sound when the subquery's membership is
//! *monotone and locally decidable* under the events the stream
//! publishes — a heartbeat upsert or a row insert may only ever **add**
//! members, and whether it does must be decidable from the event payload
//! plus O(1)-per-source state (never from rows the event doesn't carry).
//!
//! [`classify_maintenance`] derives the strongest license the subquery
//! shape supports. The result is a *claim*: the `trac-analyze`
//! maintenance pass (TRAC029) re-derives every license independently
//! from the bound query and errors on disagreement, and non-foldable
//! shapes are still served correctly — their license is
//! [`MaintenanceLicense::RescanOnly`], which forces a rescan whenever a
//! relevant event arrives instead of folding it.
//!
//! The licenses map onto the three evaluation shapes of the semijoin
//! module:
//!
//! * **heartbeat-only** — `FROM heartbeat H WHERE P_s'`: membership is a
//!   predicate on `H.sid` alone, so a heartbeat upsert for a new source
//!   decides membership by evaluating `P_s'` on the event payload.
//! * **sid-equality** — `FROM H, R WHERE H.sid = R.w ∧ P_o`: an insert
//!   into `R` passing `P_o` nominates its witness value as a member; a
//!   heartbeat for a brand-new source probes `R` once.
//! * **existence** — `FROM H, R WHERE P_s' ∧ P_o` with no join terms:
//!   membership is `P_s'` gated on `∃ r ∈ R. P_o(r)`; an insert can only
//!   flip the gate from closed to open.
//!
//! Deletes and raw heartbeat DML are never folded — every license treats
//! them as rescan triggers, because removal is not monotone.

use trac_expr::{eval_predicate, BoundExpr, BoundSelect, ColRef, Truth};
use trac_sql::BinaryOp;

/// How a prepared recency subquery participates in delta maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceLicense {
    /// The subquery was proven empty at plan time (unsatisfiable
    /// selection over column domains) — domain facts, not data facts —
    /// so no data change can ever make it non-empty. The fold ignores
    /// it entirely.
    ProvenEmpty,
    /// `FROM heartbeat H WHERE P_s'` with `P_s'` over `H.sid` only:
    /// membership of a source is decided by evaluating `P_s'` on the
    /// source id carried by the heartbeat-upsert event.
    HeartbeatOnly,
    /// Two-relation semijoin whose every join term is
    /// `H.sid = <witness column>`: inserts into the witness relation
    /// nominate members, heartbeats for new sources probe it.
    SidEquality {
        /// Binding name of the witness relation (display only).
        witness: String,
    },
    /// Two-relation shape with no join terms: the other relation only
    /// gates existence. Inserts can open the gate, never close it.
    ExistenceProbe {
        /// Binding name of the gating relation (display only).
        witness: String,
    },
    /// Membership is not monotone or not locally decidable under the
    /// change stream; any relevant event forces a rescan of this plan.
    RescanOnly {
        /// Human-readable side condition that failed.
        reason: String,
    },
}

impl MaintenanceLicense {
    /// True when events can be folded into maintained state (as opposed
    /// to merely invalidating it).
    pub fn delta_foldable(&self) -> bool {
        !matches!(self, MaintenanceLicense::RescanOnly { .. })
    }

    /// Stable short tag used by diagnostics and JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            MaintenanceLicense::ProvenEmpty => "proven-empty",
            MaintenanceLicense::HeartbeatOnly => "heartbeat-only",
            MaintenanceLicense::SidEquality { .. } => "sid-equality",
            MaintenanceLicense::ExistenceProbe { .. } => "existence",
            MaintenanceLicense::RescanOnly { .. } => "rescan-only",
        }
    }

    /// EXPLAIN-style marker appended to the subquery line.
    pub fn marker(&self) -> String {
        match self {
            MaintenanceLicense::ProvenEmpty => "maintain: delta-fold (proven empty)".into(),
            MaintenanceLicense::HeartbeatOnly => "maintain: delta-fold (heartbeat-only)".into(),
            MaintenanceLicense::SidEquality { witness } => {
                format!("maintain: delta-fold (sid-equality via {witness})")
            }
            MaintenanceLicense::ExistenceProbe { witness } => {
                format!("maintain: delta-fold (existence via {witness})")
            }
            MaintenanceLicense::RescanOnly { reason } => format!("maintain: rescan — {reason}"),
        }
    }
}

fn rescan(reason: impl Into<String>) -> MaintenanceLicense {
    MaintenanceLicense::RescanOnly {
        reason: reason.into(),
    }
}

/// Derives the strongest maintenance license for one generated recency
/// subquery (table 0 is `Heartbeat`; membership is the set of `H.sid`
/// values the query returns).
///
/// Every accepting arm encodes a side condition of the fold's
/// correctness argument; anything unrecognized falls through to
/// [`MaintenanceLicense::RescanOnly`], which is always sound.
pub fn classify_maintenance(q: &BoundSelect) -> MaintenanceLicense {
    let sid = ColRef {
        table: 0,
        column: 0,
    };
    let mut conjuncts = Vec::new();
    if let Some(p) = &q.predicate {
        crate::split_and(p, &mut conjuncts);
    }
    let mut h_terms: Vec<BoundExpr> = Vec::new();
    let mut cross_terms: Vec<BoundExpr> = Vec::new();
    for t in conjuncts {
        let tables = t.tables();
        if tables.is_empty() {
            // A constant term is data-independent: FALSE/NULL empties
            // the result forever, TRUE restricts nothing.
            match eval_predicate(&t, &[]) {
                Ok(Truth::True) => {}
                Ok(_) => return MaintenanceLicense::ProvenEmpty,
                Err(_) => return rescan("constant term does not evaluate"),
            }
        } else if !tables.contains(&0) {
            // P_o: evaluated against witness rows; no side condition
            // beyond not referencing H (guaranteed by the split).
        } else if tables.len() == 1 {
            // P_s' must read only H.sid. A predicate over H.recency is
            // not monotone under heartbeat upserts (advancing a
            // timestamp can evict a member), so it voids the fold.
            if t.references().iter().any(|c| *c != sid) {
                return rescan("heartbeat term reads a non-sid column");
            }
            h_terms.push(t);
        } else {
            // Join term between H and another relation.
            if t.references().iter().any(|c| c.table == 0 && *c != sid) {
                return rescan("join term reads a non-sid heartbeat column");
            }
            cross_terms.push(t);
        }
    }
    if q.tables.len() == 1 {
        return MaintenanceLicense::HeartbeatOnly;
    }
    if q.tables.len() > 2 {
        // Folding an insert into one of several witness relations would
        // require joining it against the others' rows — not locally
        // decidable from the event.
        return rescan("witness side spans multiple relations");
    }
    let witness = q.tables[1].binding.clone();
    if cross_terms.is_empty() {
        return MaintenanceLicense::ExistenceProbe { witness };
    }
    // Every join term must be `H.sid = <witness column>` (either
    // orientation) for an inserted witness row to nominate exactly one
    // candidate source id.
    for t in &cross_terms {
        let BoundExpr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = t
        else {
            return rescan("non-equality join shape");
        };
        let ok = matches!(
            (lhs.as_ref(), rhs.as_ref()),
            (BoundExpr::Column(a), BoundExpr::Column(b))
                if (*a == sid && b.table == 1) || (*b == sid && a.table == 1)
        );
        if !ok {
            return rescan("join term is not H.sid = witness column");
        }
    }
    MaintenanceLicense::SidEquality { witness }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trac_expr::{BoundTable, Projection};
    use trac_storage::{ColumnDef, TableId, TableSchema};
    use trac_types::DataType;

    fn hb_table() -> BoundTable {
        BoundTable {
            id: TableId(0),
            schema: TableSchema::new(
                "heartbeat",
                vec![
                    ColumnDef::new("sid", DataType::Text),
                    ColumnDef::new("recency", DataType::Timestamp),
                ],
                Some("sid"),
            )
            .unwrap(),
            binding: "H".into(),
        }
    }

    fn other_table(name: &str, binding: &str) -> BoundTable {
        BoundTable {
            id: TableId(1),
            schema: TableSchema::new(
                name,
                vec![
                    ColumnDef::new("mach_id", DataType::Text),
                    ColumnDef::new("value", DataType::Text),
                ],
                Some("mach_id"),
            )
            .unwrap(),
            binding: binding.into(),
        }
    }

    fn subquery(tables: Vec<BoundTable>, predicate: Option<BoundExpr>) -> BoundSelect {
        BoundSelect {
            tables,
            predicate,
            projections: vec![Projection::Scalar {
                expr: BoundExpr::col(0, 0),
                name: "sid".into(),
            }],
            group_by: vec![],
            having: None,
            distinct: true,
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn h_only_queries_are_heartbeat_only() {
        let q = subquery(
            vec![hb_table()],
            Some(BoundExpr::binary(
                BinaryOp::Eq,
                BoundExpr::col(0, 0),
                BoundExpr::lit("m1"),
            )),
        );
        assert_eq!(classify_maintenance(&q), MaintenanceLicense::HeartbeatOnly);
        assert!(classify_maintenance(&q).delta_foldable());
    }

    #[test]
    fn recency_predicates_void_the_fold() {
        // H.recency participates in membership: advancing a timestamp
        // could evict a member, which the monotone fold cannot express.
        let q = subquery(
            vec![hb_table()],
            Some(BoundExpr::binary(
                BinaryOp::Lt,
                BoundExpr::col(0, 1),
                BoundExpr::lit("2006-01-01 00:00:00"),
            )),
        );
        let lic = classify_maintenance(&q);
        assert!(!lic.delta_foldable(), "{lic:?}");
        assert_eq!(lic.kind(), "rescan-only");
    }

    #[test]
    fn sid_equality_join_is_licensed_both_orientations() {
        for (l, r) in [((0, 0), (1, 1)), ((1, 1), (0, 0))] {
            let q = subquery(
                vec![hb_table(), other_table("routing", "R")],
                Some(BoundExpr::binary(
                    BinaryOp::Eq,
                    BoundExpr::col(l.0, l.1),
                    BoundExpr::col(r.0, r.1),
                )),
            );
            assert_eq!(
                classify_maintenance(&q),
                MaintenanceLicense::SidEquality {
                    witness: "R".into()
                }
            );
        }
    }

    #[test]
    fn bare_existence_gate_is_licensed() {
        let q = subquery(
            vec![hb_table(), other_table("activity", "A")],
            Some(BoundExpr::binary(
                BinaryOp::Eq,
                BoundExpr::col(1, 1),
                BoundExpr::lit("idle"),
            )),
        );
        assert_eq!(
            classify_maintenance(&q),
            MaintenanceLicense::ExistenceProbe {
                witness: "A".into()
            }
        );
    }

    #[test]
    fn non_equality_joins_fall_back_to_rescan() {
        let q = subquery(
            vec![hb_table(), other_table("routing", "R")],
            Some(BoundExpr::binary(
                BinaryOp::Lt,
                BoundExpr::col(0, 0),
                BoundExpr::col(1, 0),
            )),
        );
        assert!(!classify_maintenance(&q).delta_foldable());
    }

    #[test]
    fn multi_witness_joins_fall_back_to_rescan() {
        let mut extra = other_table("activity", "A");
        extra.id = TableId(2);
        let q = subquery(
            vec![hb_table(), other_table("routing", "R"), extra],
            Some(BoundExpr::binary(
                BinaryOp::Eq,
                BoundExpr::col(0, 0),
                BoundExpr::col(1, 0),
            )),
        );
        let lic = classify_maintenance(&q);
        assert!(!lic.delta_foldable(), "{lic:?}");
    }

    #[test]
    fn false_constant_is_proven_empty() {
        let q = subquery(
            vec![hb_table()],
            Some(BoundExpr::binary(
                BinaryOp::Eq,
                BoundExpr::lit(1i64),
                BoundExpr::lit(2i64),
            )),
        );
        assert_eq!(classify_maintenance(&q), MaintenanceLicense::ProvenEmpty);
    }

    #[test]
    fn markers_are_stable() {
        assert_eq!(
            MaintenanceLicense::HeartbeatOnly.marker(),
            "maintain: delta-fold (heartbeat-only)"
        );
        assert_eq!(
            MaintenanceLicense::SidEquality {
                witness: "R".into()
            }
            .marker(),
            "maintain: delta-fold (sid-equality via R)"
        );
        assert!(MaintenanceLicense::RescanOnly { reason: "x".into() }
            .marker()
            .contains("rescan"));
    }
}
