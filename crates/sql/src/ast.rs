//! Abstract syntax trees and SQL printing.
//!
//! `Display` implementations regenerate valid SQL; the TRAC analyzer uses
//! this to expose its automatically generated recency queries to users in
//! a readable form (the paper's prototype manipulated query *strings*; we
//! manipulate trees and print on demand).

use std::fmt;
use trac_types::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`
    Select(SelectStmt),
    /// `INSERT INTO …`
    Insert(InsertStmt),
    /// `UPDATE …`
    Update(UpdateStmt),
    /// `DELETE FROM …`
    Delete(DeleteStmt),
    /// `CREATE TABLE …`
    CreateTable(CreateTableStmt),
    /// `CREATE INDEX …`
    CreateIndex(CreateIndexStmt),
    /// `DROP TABLE name`
    DropTable(String),
    /// `EXPLAIN <select>` — render the physical plan instead of running
    /// the query.
    Explain(SelectStmt),
}

/// One table mention in a `FROM` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias (`FROM Routing R`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referenced by in expressions.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One item of a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// `true` for descending.
    pub desc: bool,
}

/// A `SELECT` statement (single SPJ block, as the paper assumes, plus
/// grouping for aggregate roll-ups like the intro's "CPU seconds used").
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Comma-joined `FROM` list.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (may contain aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
}

/// An `INSERT INTO t [(cols)] VALUES (…), (…)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Row literals.
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE t SET c = e, … [WHERE p]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// A `DELETE FROM t [WHERE p]` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// A `CREATE TABLE` statement. The non-standard trailing
/// `SOURCE COLUMN name` clause designates the data source column
/// (Section 3.3's schema model, surfaced in the DDL); trailing
/// `CHECK (expr)` clauses attach row constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    /// Table name.
    pub table: String,
    /// `(name, type-name, nullable)` triples.
    pub columns: Vec<(String, String, bool)>,
    /// Optional data source column.
    pub source_column: Option<String>,
    /// `CHECK` constraint bodies, in declaration order.
    pub checks: Vec<Expr>,
}

/// A `CREATE INDEX name ON table (column)` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndexStmt {
    /// Index name (informational; the engine derives its own).
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed column.
    pub column: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }

    /// The negated comparison (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate_comparison(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            _ => return None,
        })
    }
}

/// Scalar / boolean expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified (`A.mach_id`).
    Column {
        /// Table name or alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Aggregate or scalar function call; `COUNT(*)` is
    /// `Func { name: "COUNT", args: [], wildcard: true }`.
    Func {
        /// Upper-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)`.
        wildcard: bool,
    },
}

impl Expr {
    /// Builds `lhs op rhs`.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Builds a qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Builds a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Conjunction of a list of expressions (`None` for empty input).
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::binary(BinaryOp::And, a, b))
    }

    /// Disjunction of a list of expressions (`None` for empty input).
    pub fn disjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::binary(BinaryOp::Or, a, b))
    }

    /// True when the expression contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Func { name, args, .. } => {
                matches!(name.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::IsNull { expr, .. } | Expr::Not(expr) | Expr::Neg(expr) => {
                expr.contains_aggregate()
            }
            Expr::Column { .. } | Expr::Literal(_) => false,
        }
    }
}

fn prec(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq => 4,
        BinaryOp::Add | BinaryOp::Sub => 5,
        BinaryOp::Mul | BinaryOp::Div => 6,
    }
}

fn fmt_operand(e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let own = match e {
        Expr::Binary { op, .. } => prec(*op),
        Expr::Not(_) => 3,
        // Postfix predicates cannot chain (`a IN (1) = b` does not
        // parse), so force parens anywhere a comparison operand or
        // another postfix's subject would need them.
        Expr::InList { .. } | Expr::Between { .. } | Expr::IsNull { .. } => 3,
        _ => 7,
    };
    if own < parent {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Binary { op, lhs, rhs } => {
                let p = prec(*op);
                // Comparisons don't chain in the grammar (`a = b >= c`
                // does not parse), so a comparison operand of a comparison
                // needs parens on either side.
                let lhs_parent = if op.is_comparison() { p + 1 } else { p };
                fmt_operand(lhs, lhs_parent, f)?;
                write!(f, " {} ", op.sql())?;
                // Always parenthesize a right operand of equal precedence:
                // required for non-associative ops (`a - (b - c)`,
                // `a * (b / c)`), and it keeps parse(print(e)) == e
                // structurally for the associative ones too.
                fmt_operand(rhs, p + 1, f)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                fmt_operand(expr, 5, f)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                fmt_operand(expr, 5, f)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                fmt_operand(lo, 5, f)?;
                write!(f, " AND ")?;
                fmt_operand(hi, 5, f)
            }
            Expr::IsNull { expr, negated } => {
                fmt_operand(expr, 5, f)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Not(e) => {
                write!(f, "NOT ")?;
                fmt_operand(e, 4, f)
            }
            Expr::Neg(e) => {
                write!(f, "-")?;
                fmt_operand(e, 7, f)
            }
            Expr::Func {
                name,
                args,
                wildcard,
            } => {
                write!(f, "{name}(")?;
                if *wildcard {
                    write!(f, "*")?;
                } else {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} {a}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", k.expr, if k.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
            Statement::Insert(s) => {
                write!(f, "INSERT INTO {}", s.table)?;
                if let Some(cols) = &s.columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in s.rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Update(s) => {
                write!(f, "UPDATE {} SET ", s.table)?;
                for (i, (c, e)) in s.assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = &s.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete(s) => {
                write!(f, "DELETE FROM {}", s.table)?;
                if let Some(w) = &s.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable(s) => {
                write!(f, "CREATE TABLE {} (", s.table)?;
                for (i, (name, ty, nullable)) in s.columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} {ty}{}", if *nullable { "" } else { " NOT NULL" })?;
                }
                write!(f, ")")?;
                if let Some(sc) = &s.source_column {
                    write!(f, " SOURCE COLUMN {sc}")?;
                }
                for c in &s.checks {
                    write!(f, " CHECK ({c})")?;
                }
                Ok(())
            }
            Statement::CreateIndex(s) => {
                write!(f, "CREATE INDEX {} ON {} ({})", s.name, s.table, s.column)
            }
            Statement::DropTable(t) => write!(f, "DROP TABLE {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parenthesizes_by_precedence() {
        // (a OR b) AND c must keep its parens.
        let e = Expr::binary(
            BinaryOp::And,
            Expr::binary(BinaryOp::Or, Expr::col("a"), Expr::col("b")),
            Expr::col("c"),
        );
        assert_eq!(e.to_string(), "(a OR b) AND c");
        // a OR b AND c needs none.
        let e = Expr::binary(
            BinaryOp::Or,
            Expr::col("a"),
            Expr::binary(BinaryOp::And, Expr::col("b"), Expr::col("c")),
        );
        assert_eq!(e.to_string(), "a OR b AND c");
    }

    #[test]
    fn display_subtraction_associativity() {
        // (a - b) - c prints without parens; a - (b - c) keeps them.
        let l = Expr::binary(
            BinaryOp::Sub,
            Expr::binary(BinaryOp::Sub, Expr::col("a"), Expr::col("b")),
            Expr::col("c"),
        );
        assert_eq!(l.to_string(), "a - b - c");
        let r = Expr::binary(
            BinaryOp::Sub,
            Expr::col("a"),
            Expr::binary(BinaryOp::Sub, Expr::col("b"), Expr::col("c")),
        );
        assert_eq!(r.to_string(), "a - (b - c)");
    }

    #[test]
    fn display_in_and_not() {
        let e = Expr::Not(Box::new(Expr::InList {
            expr: Box::new(Expr::qcol("A", "mach_id")),
            list: vec![Expr::lit("m1"), Expr::lit("m2")],
            negated: false,
        }));
        assert_eq!(e.to_string(), "NOT (A.mach_id IN ('m1', 'm2'))");
    }

    #[test]
    fn op_helpers() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
        assert_eq!(BinaryOp::LtEq.negate_comparison(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::And.negate_comparison(), None);
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Func {
            name: "COUNT".into(),
            args: vec![],
            wildcard: true,
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let nested = Expr::binary(BinaryOp::Add, e, Expr::lit(1i64));
        assert!(nested.contains_aggregate());
    }

    #[test]
    fn conjoin_disjoin() {
        assert_eq!(Expr::conjoin([]), None);
        assert_eq!(Expr::conjoin([Expr::col("a")]), Some(Expr::col("a")));
        let e = Expr::conjoin([Expr::col("a"), Expr::col("b"), Expr::col("c")]).unwrap();
        assert_eq!(e.to_string(), "a AND b AND c");
        let d = Expr::disjoin([Expr::col("a"), Expr::col("b")]).unwrap();
        assert_eq!(d.to_string(), "a OR b");
    }
}
