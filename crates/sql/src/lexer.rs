//! Hand-written SQL lexer.

use trac_types::{Result, TracError};

/// Kinds of lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (stored as written).
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// A token with its byte span (for error messages and diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the token start in the input.
    pub offset: usize,
    /// Byte offset one past the token end in the input (`offset == end`
    /// only for `Eof`).
    pub end: usize,
}

impl Token {
    /// The token's length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.offset
    }

    /// True for the zero-width `Eof` token.
    pub fn is_empty(&self) -> bool {
        self.end == self.offset
    }
}

/// Tokenizes SQL text.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input into tokens (with a trailing `Eof`).
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let is_eof = t.kind == TokenKind::Eof;
            out.push(t);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `--` line comment
                Some(b'-') if self.bytes.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let offset = self.pos;
        let kind = self.next_kind(offset)?;
        Ok(Token {
            kind,
            offset,
            end: self.pos,
        })
    }

    fn next_kind(&mut self, offset: usize) -> Result<TokenKind> {
        let Some(b) = self.peek() else {
            return Ok(TokenKind::Eof);
        };
        match b {
            b'\'' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            if self.peek() == Some(b'\'') {
                                self.bump();
                                s.push('\'');
                            } else {
                                return Ok(TokenKind::StringLit(s));
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => {
                            return Err(TracError::Parse(format!(
                                "unterminated string literal at byte {offset}"
                            )))
                        }
                    }
                }
            }
            b'0'..=b'9' => self.lex_number(),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                    self.pos += 1;
                }
                Ok(TokenKind::Ident(self.src[start..self.pos].to_string()))
            }
            b'=' => {
                self.bump();
                Ok(TokenKind::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(TokenKind::NotEq)
                } else {
                    Err(TracError::Parse(format!("stray `!` at byte {offset}")))
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Ok(TokenKind::LtEq)
                    }
                    Some(b'>') => {
                        self.bump();
                        Ok(TokenKind::NotEq)
                    }
                    _ => Ok(TokenKind::Lt),
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(TokenKind::GtEq)
                } else {
                    Ok(TokenKind::Gt)
                }
            }
            b'(' => {
                self.bump();
                Ok(TokenKind::LParen)
            }
            b')' => {
                self.bump();
                Ok(TokenKind::RParen)
            }
            b',' => {
                self.bump();
                Ok(TokenKind::Comma)
            }
            b'.' => {
                self.bump();
                Ok(TokenKind::Dot)
            }
            b';' => {
                self.bump();
                Ok(TokenKind::Semi)
            }
            b'*' => {
                self.bump();
                Ok(TokenKind::Star)
            }
            b'+' => {
                self.bump();
                Ok(TokenKind::Plus)
            }
            b'-' => {
                self.bump();
                Ok(TokenKind::Minus)
            }
            b'/' => {
                self.bump();
                Ok(TokenKind::Slash)
            }
            other => Err(TracError::Parse(format!(
                "unexpected character {:?} at byte {offset}",
                other as char
            ))),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A fractional part: `.` followed by a digit (so `1.x` in a
        // qualified name never lexes as a float).
        if self.peek() == Some(b'.')
            && matches!(self.bytes.get(self.pos + 1), Some(c) if c.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut j = self.pos + 1;
            if matches!(self.bytes.get(j), Some(b'+' | b'-')) {
                j += 1;
            }
            if matches!(self.bytes.get(j), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.pos = j;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            Ok(TokenKind::FloatLit(text.parse().map_err(|_| {
                TracError::Parse(format!("bad float literal {text}"))
            })?))
        } else {
            Ok(TokenKind::IntLit(text.parse().map_err(|_| {
                TracError::Parse(format!("bad int literal {text}"))
            })?))
        }
    }
}

impl Token {
    /// If this token is an identifier, its text.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        self.ident().is_some_and(|s| s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_paper_query_q1() {
        let ks =
            kinds("SELECT mach_id FROM Activity WHERE mach_id IN ('m1','m2') AND value = 'idle';");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert!(ks.contains(&TokenKind::StringLit("m1".into())));
        assert!(ks.contains(&TokenKind::Eq));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'o''brien'")[0],
            TokenKind::StringLit("o'brien".into())
        );
        assert!(Lexer::new("'unterminated").tokenize().is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("3.5")[0], TokenKind::FloatLit(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::FloatLit(0.25));
        // Qualified name after an integer stays separate.
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <> b != c <= d >= e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::NotEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::LtEq,
                TokenKind::Ident("d".into()),
                TokenKind::GtEq,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_whitespace() {
        let ks = kinds("SELECT -- the projection\n  x");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn minus_vs_comment() {
        // A single `-` is arithmetic, `--` is a comment.
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::Minus,
                TokenKind::IntLit(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("SELECT @").tokenize().is_err());
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn spans_cover_token_text() {
        let src = "SELECT mach_id FROM activity WHERE value = 'idle'";
        let ts = Lexer::new(src).tokenize().unwrap();
        for t in &ts {
            match &t.kind {
                TokenKind::Eof => {
                    assert!(t.is_empty());
                    assert_eq!(t.offset, src.len());
                }
                TokenKind::Ident(s) => {
                    assert_eq!(&src[t.offset..t.end], s.as_str());
                }
                TokenKind::StringLit(s) => {
                    // Span includes the quotes.
                    assert_eq!(t.len(), s.len() + 2);
                    assert_eq!(&src[t.offset..t.offset + 1], "'");
                }
                _ => assert!(!t.is_empty()),
            }
        }
        // `<=` spans two bytes.
        let ts = Lexer::new("a <= b").tokenize().unwrap();
        assert_eq!(ts[1].kind, TokenKind::LtEq);
        assert_eq!((ts[1].offset, ts[1].end), (2, 4));
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let ts = Lexer::new("select").tokenize().unwrap();
        assert!(ts[0].is_kw("SELECT"));
        assert!(!ts[0].is_kw("FROM"));
    }
}
