//! SQL front end: lexer, AST, parser and SQL printing.
//!
//! The paper's prototype spent "more than 2/3" of its PL/pgSQL on parsing
//! user query strings and generating new (recency) query strings —
//! concluding that recency reporting belongs inside the database system.
//! This crate is that "inside the database" front end: a hand-written
//! lexer and recursive-descent parser for the SPJ dialect the paper's
//! queries use (`SELECT`/`FROM`/`WHERE` with `AND`/`OR`/`NOT`, comparison
//! operators, `IN`/`NOT IN` lists, `BETWEEN`, `IS NULL`, aggregates,
//! plus the DML/DDL needed to feed the engine), and a printer that turns
//! ASTs back into SQL so generated recency queries remain inspectable.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinaryOp, CreateIndexStmt, CreateTableStmt, DeleteStmt, Expr, InsertStmt, OrderKey, SelectItem,
    SelectStmt, Statement, TableRef, UpdateStmt,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_expr, parse_select, parse_statement};
