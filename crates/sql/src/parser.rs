//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use trac_types::{Result, Timestamp, TracError, Value};

/// Words that terminate expressions / cannot be bare column names.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "ORDER", "BY",
    "GROUP", "HAVING", "LIMIT", "AS", "DISTINCT", "VALUES", "SET", "INSERT", "INTO", "UPDATE",
    "DELETE", "CREATE", "TABLE", "INDEX", "ON", "DROP", "TRUE", "FALSE", "DESC", "ASC", "EXPLAIN",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.finish()?;
    Ok(stmt)
}

/// Parses a `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        other => Err(TracError::Parse(format!(
            "expected a SELECT statement, got {other}"
        ))),
    }
}

/// Parses a standalone expression (useful in tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.finish()?;
    Ok(e)
}

/// Maximum expression nesting depth. Each recursion level of the
/// descent costs stack; unchecked input like `((((…1…))))` or
/// `NOT NOT NOT … x` would otherwise overflow the thread stack instead
/// of returning a parse error.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: Lexer::new(src).tokenize()?,
            pos: 0,
            depth: 0,
        })
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(TracError::Parse(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, wanted: &str) -> TracError {
        let t = self.peek();
        TracError::Parse(format!(
            "expected {wanted} at byte {}, found {:?}",
            t.offset, t.kind
        ))
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !is_reserved(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn finish(&mut self) -> Result<()> {
        self.eat(&TokenKind::Semi);
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let t = self.peek();
        if t.is_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if t.is_kw("EXPLAIN") {
            self.bump();
            Ok(Statement::Explain(self.select()?))
        } else if t.is_kw("INSERT") {
            self.insert()
        } else if t.is_kw("UPDATE") {
            self.update()
        } else if t.is_kw("DELETE") {
            self.delete()
        } else if t.is_kw("CREATE") {
            self.create()
        } else if t.is_kw("DROP") {
            self.bump();
            self.expect_kw("TABLE")?;
            Ok(Statement::DropTable(self.ident("table name")?))
        } else {
            Err(self.unexpected("a statement keyword"))
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident("alias")?)
                } else {
                    match &self.peek().kind {
                        TokenKind::Ident(s) if !is_reserved(s) => Some(self.ident("alias")?),
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident("table name")?;
            let alias = match &self.peek().kind {
                TokenKind::Ident(s) if !is_reserved(s) => Some(self.ident("alias")?),
                _ => None,
            };
            from.push(TableRef { table, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump().kind {
                TokenKind::IntLit(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.unexpected("a non-negative LIMIT count")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        let columns = if self.peek().kind == TokenKind::LParen {
            self.bump();
            let mut cols = vec![self.ident("column name")?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.ident("column name")?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut row = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            rows,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident("table name")?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            assignments.push((col, self.expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStmt {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let table = self.ident("table name")?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut columns = Vec::new();
            loop {
                let name = self.ident("column name")?;
                let ty = match &self.peek().kind {
                    TokenKind::Ident(s) => {
                        let s = s.clone();
                        self.bump();
                        s
                    }
                    _ => return Err(self.unexpected("a type name")),
                };
                let mut nullable = true;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    nullable = false;
                } else {
                    self.eat_kw("NULL");
                }
                columns.push((name, ty, nullable));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            // Non-standard clause designating the data source column.
            let source_column = if self.peek().is_kw("SOURCE") {
                self.bump();
                self.expect_kw("COLUMN")?;
                Some(self.ident("source column name")?)
            } else {
                None
            };
            // Row constraints: CHECK (expr), repeatable.
            let mut checks = Vec::new();
            while self.peek().is_kw("CHECK") {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                checks.push(self.expr()?);
                self.expect(&TokenKind::RParen, "`)`")?;
            }
            Ok(Statement::CreateTable(CreateTableStmt {
                table,
                columns,
                source_column,
                checks,
            }))
        } else if self.eat_kw("INDEX") {
            let name = self.ident("index name")?;
            self.expect_kw("ON")?;
            let table = self.ident("table name")?;
            self.expect(&TokenKind::LParen, "`(`")?;
            let column = self.ident("column name")?;
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(Statement::CreateIndex(CreateIndexStmt {
                name,
                table,
                column,
            }))
        } else {
            Err(self.unexpected("`TABLE` or `INDEX`"))
        }
    }

    /// Expression entry point: OR-level.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.enter()?;
        let out = self.expr_inner();
        self.leave();
        out
    }

    fn expr_inner(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.peek().is_kw("OR") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.peek().is_kw("AND") {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek().is_kw("NOT") {
            self.bump();
            self.enter()?;
            let inner = self.not_expr();
            self.leave();
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        // Postfix predicates: IN, BETWEEN, IS [NOT] NULL (optionally
        // preceded by NOT).
        let negated = if self.peek().is_kw("NOT")
            && (self.tokens[self.pos + 1].is_kw("IN") || self.tokens[self.pos + 1].is_kw("BETWEEN"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut list = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("`IN` or `BETWEEN` after `NOT`"));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek().kind {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            self.enter()?;
            let inner = self.unary();
            self.leave();
            return Ok(Expr::Neg(Box::new(inner?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::IntLit(n) => {
                self.bump();
                Ok(Expr::lit(n))
            }
            TokenKind::FloatLit(x) => {
                self.bump();
                Ok(Expr::lit(x))
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::lit(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                if word.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::lit(true));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::lit(false));
                }
                if word.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("TIMESTAMP") {
                    // TIMESTAMP 'literal'
                    self.bump();
                    if let TokenKind::StringLit(s) = self.peek().kind.clone() {
                        self.bump();
                        return Ok(Expr::Literal(Value::Timestamp(Timestamp::parse(&s)?)));
                    }
                    return Err(self.unexpected("a timestamp string literal"));
                }
                if is_reserved(&word) {
                    return Err(self.unexpected("an expression"));
                }
                // Function call?
                if self.tokens[self.pos + 1].kind == TokenKind::LParen {
                    self.bump(); // name
                    self.bump(); // (
                    if self.eat(&TokenKind::Star) {
                        self.expect(&TokenKind::RParen, "`)`")?;
                        return Ok(Expr::Func {
                            name: word.to_ascii_uppercase(),
                            args: vec![],
                            wildcard: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        args.push(self.expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    return Ok(Expr::Func {
                        name: word.to_ascii_uppercase(),
                        args,
                        wildcard: false,
                    });
                }
                // Column reference: ident or ident.ident
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let name = self.ident("column name")?;
                    Ok(Expr::qcol(word, name))
                } else {
                    Ok(Expr::col(word))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let q = parse_select(
            "SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle';",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].table, "Activity");
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "mach_id IN ('m1', 'm2') AND value = 'idle'");
    }

    #[test]
    fn parses_paper_q2_join() {
        let q = parse_select(
            "SELECT A.mach_id FROM Routing R, Activity A \
             WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id;",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].binding_name(), "R");
        assert_eq!(q.from[1].binding_name(), "A");
        assert_eq!(
            q.to_string(),
            "SELECT A.mach_id FROM Routing R, Activity A \
             WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id"
        );
    }

    #[test]
    fn parses_eval_q2_not_in_count() {
        let q = parse_select(
            "SELECT COUNT(*) FROM Activity A WHERE A.mach_id NOT IN \
             ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000') AND A.value = 'idle';",
        )
        .unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(expr, Expr::Func { wildcard: true, .. }));
            }
            _ => panic!("expected expr item"),
        }
        let w = q.where_clause.unwrap();
        assert!(w.to_string().starts_with("A.mach_id NOT IN ("));
    }

    #[test]
    fn roundtrip_printing_reparses() {
        let cases = [
            "SELECT DISTINCT a, b AS c FROM t1 x, t2 WHERE x.a = t2.b OR NOT x.c < 3 ORDER BY a DESC, b LIMIT 10",
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL",
            "SELECT mach_id FROM Activity WHERE event_time >= TIMESTAMP '2006-03-15 14:20:05'",
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2 OR b NOT IN (1, 2, 3)",
            "SELECT COUNT(*) FROM t WHERE a / (b - c) * 2 > 1 + d",
        ];
        for sql in cases {
            let q1 = parse_select(sql).unwrap();
            let printed = q1.to_string();
            let q2 = parse_select(&printed).unwrap();
            assert_eq!(q1, q2, "roundtrip failed for {sql}\nprinted: {printed}");
        }
    }

    #[test]
    fn parses_dml_and_ddl() {
        let s = parse_statement(
            "INSERT INTO Activity (mach_id, value, event_time) VALUES \
             ('m1', 'idle', TIMESTAMP '2006-03-11 20:37:46'), ('m2', 'busy', TIMESTAMP '2006-02-10 18:22:01')",
        )
        .unwrap();
        match &s {
            Statement::Insert(i) => {
                assert_eq!(i.rows.len(), 2);
                assert_eq!(i.columns.as_ref().unwrap().len(), 3);
            }
            _ => panic!(),
        }
        let s = parse_statement("UPDATE Activity SET value = 'busy' WHERE mach_id = 'm1'").unwrap();
        assert!(matches!(s, Statement::Update(_)));
        let s = parse_statement("DELETE FROM Activity WHERE mach_id = 'm1'").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
        let s = parse_statement(
            "CREATE TABLE Activity (mach_id TEXT NOT NULL, value TEXT, event_time TIMESTAMP) \
             SOURCE COLUMN mach_id",
        )
        .unwrap();
        match &s {
            Statement::CreateTable(c) => {
                assert_eq!(c.source_column.as_deref(), Some("mach_id"));
                assert!(!c.columns[0].2); // NOT NULL
                assert!(c.columns[1].2);
            }
            _ => panic!(),
        }
        let s = parse_statement("CREATE INDEX activity_idx ON Activity (mach_id)").unwrap();
        assert!(matches!(s, Statement::CreateIndex(_)));
        let s = parse_statement("DROP TABLE Activity").unwrap();
        assert_eq!(s, Statement::DropTable("Activity".into()));
    }

    #[test]
    fn parses_explain() {
        let sql = "explain SELECT mach_id FROM Activity WHERE value = 'idle'";
        let s = parse_statement(sql).unwrap();
        match &s {
            Statement::Explain(sel) => assert_eq!(sel.from[0].table, "Activity"),
            other => panic!("expected EXPLAIN, got {other}"),
        }
        // Display round-trips through the parser.
        let again = parse_statement(&s.to_string()).unwrap();
        assert_eq!(s, again);
        // EXPLAIN wraps SELECT only.
        assert!(parse_statement("EXPLAIN DROP TABLE Activity").is_err());
    }

    #[test]
    fn precedence() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: a=1 OR (b=2 AND c=3)
        match e {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR at top, got {other:?}"),
        }
        let e = parse_expr("NOT a = 1 AND b = 2").unwrap();
        // NOT binds tighter than AND.
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                lhs,
                ..
            } => assert!(matches!(*lhs, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-x + 3").unwrap();
        assert_eq!(e.to_string(), "-x + 3");
        let e = parse_expr("a < -1").unwrap();
        assert_eq!(e.to_string(), "a < -1");
    }

    #[test]
    fn error_cases() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a").is_err()); // no FROM
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage +").is_err());
        assert!(parse_expr("a NOT 5").is_err());
        assert!(parse_expr("a IN 5").is_err());
        assert!(parse_statement("FROB x").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT -1").is_err());
        assert!(parse_expr("TIMESTAMP 42").is_err());
    }

    #[test]
    fn select_trailing_semicolon_and_case() {
        assert!(parse_select("select A from T;").is_ok());
        assert!(parse_select("SeLeCt a FrOm t").is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let parens = format!("SELECT {}1{} FROM t", "(".repeat(5000), ")".repeat(5000));
        let err = parse_statement(&parens).unwrap_err();
        assert!(err.message().contains("nesting"), "{err}");
        let nots = format!("SELECT a FROM t WHERE {}a = 1", "NOT ".repeat(5000));
        assert!(parse_statement(&nots).is_err());
        let negs = format!("SELECT {}1 FROM t", "- ".repeat(5000));
        assert!(parse_statement(&negs).is_err());
        // Plausible nesting still parses.
        let ok = format!("SELECT {}1{} FROM t", "(".repeat(60), ")".repeat(60));
        assert!(parse_statement(&ok).is_ok());
    }
}
