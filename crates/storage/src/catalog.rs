//! Name resolution for tables and indexes, including session temp tables.
//!
//! The TRAC session machinery (paper Section 4.3) materializes recency
//! information into automatically-created temporary tables
//! (`sys_temp_a…`, `sys_temp_e…`) that live until the end of the user
//! session unless copied. The catalog tracks which tables belong to which
//! session so they can be dropped en masse.

use std::collections::HashMap;
use trac_types::{Result, TracError};

/// Identifies a table in the database (index into the table vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Identifies a user session (owner of temp tables).
pub type SessionId = u64;

/// Metadata about one secondary index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Index name (e.g. `activity_mach_id_idx`).
    pub name: String,
    /// Table the index belongs to.
    pub table: TableId,
    /// Indexed column position.
    pub column: usize,
}

#[derive(Debug, Clone)]
struct TableEntry {
    id: TableId,
    /// Session owning this temp table, or `None` for permanent tables.
    temp_owner: Option<SessionId>,
}

/// Maps names to table ids and tracks temp-table ownership.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    indexes: Vec<IndexMeta>,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a permanent table.
    pub fn register_table(&mut self, name: &str, id: TableId) -> Result<()> {
        self.register(name, id, None)
    }

    /// Registers a session temp table.
    pub fn register_temp_table(
        &mut self,
        name: &str,
        id: TableId,
        session: SessionId,
    ) -> Result<()> {
        self.register(name, id, Some(session))
    }

    fn register(&mut self, name: &str, id: TableId, owner: Option<SessionId>) -> Result<()> {
        let key = norm(name);
        if self.tables.contains_key(&key) {
            return Err(TracError::Catalog(format!("table {name} already exists")));
        }
        self.tables.insert(
            key,
            TableEntry {
                id,
                temp_owner: owner,
            },
        );
        Ok(())
    }

    /// Resolves a table name.
    pub fn lookup_table(&self, name: &str) -> Option<TableId> {
        self.tables.get(&norm(name)).map(|e| e.id)
    }

    /// True when `name` refers to a temp table.
    pub fn is_temp(&self, name: &str) -> bool {
        self.tables
            .get(&norm(name))
            .is_some_and(|e| e.temp_owner.is_some())
    }

    /// Removes one table binding (and its index metadata); returns its id.
    pub fn drop_table(&mut self, name: &str) -> Result<TableId> {
        let id = self
            .tables
            .remove(&norm(name))
            .map(|e| e.id)
            .ok_or_else(|| TracError::Catalog(format!("no table named {name}")))?;
        self.indexes.retain(|m| m.table != id);
        Ok(id)
    }

    /// Drops every temp table belonging to `session`; returns their ids.
    pub fn drop_session_temps(&mut self, session: SessionId) -> Vec<TableId> {
        let doomed: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, e)| e.temp_owner == Some(session))
            .map(|(k, _)| k.clone())
            .collect();
        let ids: Vec<TableId> = doomed
            .iter()
            .filter_map(|k| self.tables.remove(k).map(|e| e.id))
            .collect();
        self.indexes.retain(|m| !ids.contains(&m.table));
        ids
    }

    /// Promotes a temp table to permanent (the paper's "copy to a
    /// permanent table before the end of a session", done in place).
    pub fn persist_temp(&mut self, name: &str) -> Result<()> {
        let e = self
            .tables
            .get_mut(&norm(name))
            .ok_or_else(|| TracError::Catalog(format!("no table named {name}")))?;
        e.temp_owner = None;
        Ok(())
    }

    /// Registers an index.
    pub fn register_index(&mut self, meta: IndexMeta) -> Result<usize> {
        if self.indexes.iter().any(|m| m.name == meta.name) {
            return Err(TracError::Catalog(format!(
                "index {} already exists",
                meta.name
            )));
        }
        self.indexes.push(meta);
        Ok(self.indexes.len() - 1)
    }

    /// All indexes on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &IndexMeta> {
        self.indexes.iter().filter(move |m| m.table == table)
    }

    /// Finds the index on `(table, column)`, if any.
    pub fn index_on_column(&self, table: TableId, column: usize) -> Option<&IndexMeta> {
        self.indexes
            .iter()
            .find(|m| m.table == table && m.column == column)
    }

    /// Names of all registered tables (normalized), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut c = Catalog::new();
        c.register_table("Activity", TableId(0)).unwrap();
        assert_eq!(c.lookup_table("activity"), Some(TableId(0)));
        assert_eq!(c.lookup_table("ACTIVITY"), Some(TableId(0)));
        assert!(c.register_table("ACTIVITY", TableId(1)).is_err());
    }

    #[test]
    fn temp_table_lifecycle() {
        let mut c = Catalog::new();
        c.register_temp_table("sys_temp_a1", TableId(1), 7).unwrap();
        c.register_temp_table("sys_temp_e1", TableId(2), 7).unwrap();
        c.register_temp_table("sys_temp_a2", TableId(3), 8).unwrap();
        assert!(c.is_temp("sys_temp_a1"));
        let dropped = c.drop_session_temps(7);
        assert_eq!(dropped.len(), 2);
        assert_eq!(c.lookup_table("sys_temp_a1"), None);
        assert_eq!(c.lookup_table("sys_temp_a2"), Some(TableId(3)));
    }

    #[test]
    fn persist_temp_survives_session_drop() {
        let mut c = Catalog::new();
        c.register_temp_table("keeper", TableId(1), 7).unwrap();
        c.persist_temp("keeper").unwrap();
        assert!(!c.is_temp("keeper"));
        assert!(c.drop_session_temps(7).is_empty());
        assert_eq!(c.lookup_table("keeper"), Some(TableId(1)));
    }

    #[test]
    fn index_registry() {
        let mut c = Catalog::new();
        c.register_table("t", TableId(0)).unwrap();
        c.register_index(IndexMeta {
            name: "t_sid_idx".into(),
            table: TableId(0),
            column: 0,
        })
        .unwrap();
        assert!(c
            .register_index(IndexMeta {
                name: "t_sid_idx".into(),
                table: TableId(0),
                column: 1,
            })
            .is_err());
        assert!(c.index_on_column(TableId(0), 0).is_some());
        assert!(c.index_on_column(TableId(0), 1).is_none());
        assert_eq!(c.indexes_on(TableId(0)).count(), 1);
    }
}
