//! Name resolution for tables and indexes, including session temp tables.
//!
//! The TRAC session machinery (paper Section 4.3) materializes recency
//! information into automatically-created temporary tables
//! (`sys_temp_a…`, `sys_temp_e…`) that live until the end of the user
//! session unless copied. The catalog tracks which tables belong to which
//! session so they can be dropped en masse.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use trac_types::{Result, TracError, Value};

/// Identifies a table in the database (index into the table vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Identifies a user session (owner of temp tables).
pub type SessionId = u64;

/// Metadata about one secondary index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Index name (e.g. `activity_mach_id_idx`).
    pub name: String,
    /// Table the index belongs to.
    pub table: TableId,
    /// Indexed column position.
    pub column: usize,
}

#[derive(Debug, Clone)]
struct TableEntry {
    id: TableId,
    /// Session owning this temp table, or `None` for permanent tables.
    temp_owner: Option<SessionId>,
}

/// Bitmap size of the linear-counting NDV sketch (bits).
const SKETCH_BITS: usize = 256;

/// A fixed-size linear-counting sketch estimating the number of
/// distinct values observed. 256 bits is plenty for planner-grade
/// estimates on monitoring-sized tables: the estimate only steers
/// access-path and join-order choices, never results.
#[derive(Debug, Clone, Copy, Default)]
pub struct NdvSketch {
    bits: [u64; SKETCH_BITS / 64],
}

impl NdvSketch {
    /// Folds one value into the sketch.
    pub fn observe(&mut self, v: &Value) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash(&mut h);
        let bit = (h.finish() % SKETCH_BITS as u64) as usize;
        self.bits[bit / 64] |= 1 << (bit % 64);
    }

    /// Linear-counting estimate: `-m · ln(z/m)` with `z` empty buckets.
    /// Saturates to `u64::MAX` when every bucket is hit.
    pub fn estimate(&self) -> u64 {
        let zeros = self
            .bits
            .iter()
            .map(|w| w.count_zeros() as u64)
            .sum::<u64>();
        if zeros == 0 {
            return u64::MAX;
        }
        let m = SKETCH_BITS as f64;
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        {
            (-m * (zeros as f64 / m).ln()).round() as u64
        }
    }
}

/// Planner statistics for one column, maintained approximately on the
/// write path (see [`TableStats`]).
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// NULL values observed on insert (never decremented on delete).
    pub nulls: u64,
    /// Smallest non-NULL value observed (insert-only widening).
    pub min: Option<Value>,
    /// Largest non-NULL value observed (insert-only widening).
    pub max: Option<Value>,
    /// Distinct-value sketch over inserted non-NULL values.
    pub sketch: NdvSketch,
}

impl ColumnStats {
    fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.sketch.observe(v);
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// NDV estimate, clamped to `[1, rows]` for a non-empty table.
    pub fn ndv(&self, rows: u64) -> u64 {
        if rows == 0 {
            return 1;
        }
        self.sketch.estimate().clamp(1, rows)
    }

    /// Proof that no NULL was ever inserted into this column.
    ///
    /// Sound because `nulls` only ever increments (deletes and aborts
    /// never decrement it), so a zero count means the column has never
    /// seen a NULL — a visible NULL without an insert is impossible.
    pub fn proves_non_null(&self) -> bool {
        self.nulls == 0
    }

    /// Proof that no NaN was ever inserted into this column.
    ///
    /// `min`/`max` widen under the storage total order
    /// ([`Value::cmp`], which uses `f64::total_cmp`), where negative
    /// NaNs sort below `-inf` and positive NaNs above `+inf`. Any
    /// inserted NaN therefore necessarily becomes `min` or `max`, and
    /// the bounds never shrink — so NaN-free extremes prove the whole
    /// insert history was NaN-free.
    pub fn proves_nan_free(&self) -> bool {
        let nan = |v: &Option<Value>| matches!(v, Some(Value::Float(f)) if f.is_nan());
        !nan(&self.min) && !nan(&self.max)
    }
}

/// Planner statistics for one table.
///
/// Maintained on the write path (insert/delete/ingest, which covers the
/// heartbeat-upsert path too) while the data lock is already held, so
/// the counters are *estimates*, not MVCC-exact answers: an aborted
/// transaction's inserts stay counted, deletes decrement immediately,
/// and min/max/NDV only widen. That is the sound direction for a cost
/// model — stats steer plan choice, and every plan computes the same
/// rows. `epoch` records the heartbeat epoch at the last update, so
/// consumers that already invalidate on epoch movement (the prepared
/// recency-plan cache) pick up post-ingest stats automatically.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Net row estimate (inserts minus deletes, saturating).
    pub rows: u64,
    /// Heartbeat epoch observed at the last stats update.
    pub epoch: u64,
    /// Per-column statistics, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Folds one inserted row into the stats.
    pub fn observe_insert(&mut self, row: &[Value], epoch: u64) {
        self.rows = self.rows.saturating_add(1);
        self.epoch = epoch;
        if self.columns.len() < row.len() {
            self.columns.resize_with(row.len(), ColumnStats::default);
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.observe(v);
        }
    }

    /// Records one deleted row.
    pub fn observe_delete(&mut self, epoch: u64) {
        self.rows = self.rows.saturating_sub(1);
        self.epoch = epoch;
    }

    /// Stats for `column`, when any row has been observed.
    pub fn column(&self, column: usize) -> Option<&ColumnStats> {
        self.columns.get(column)
    }
}

/// Maps names to table ids and tracks temp-table ownership.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    indexes: Vec<IndexMeta>,
    stats: HashMap<TableId, TableStats>,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a permanent table.
    pub fn register_table(&mut self, name: &str, id: TableId) -> Result<()> {
        self.register(name, id, None)
    }

    /// Registers a session temp table.
    pub fn register_temp_table(
        &mut self,
        name: &str,
        id: TableId,
        session: SessionId,
    ) -> Result<()> {
        self.register(name, id, Some(session))
    }

    fn register(&mut self, name: &str, id: TableId, owner: Option<SessionId>) -> Result<()> {
        let key = norm(name);
        if self.tables.contains_key(&key) {
            return Err(TracError::Catalog(format!("table {name} already exists")));
        }
        self.tables.insert(
            key,
            TableEntry {
                id,
                temp_owner: owner,
            },
        );
        Ok(())
    }

    /// Resolves a table name.
    pub fn lookup_table(&self, name: &str) -> Option<TableId> {
        self.tables.get(&norm(name)).map(|e| e.id)
    }

    /// True when `name` refers to a temp table.
    pub fn is_temp(&self, name: &str) -> bool {
        self.tables
            .get(&norm(name))
            .is_some_and(|e| e.temp_owner.is_some())
    }

    /// True when `id` refers to a temp table. Temp-table writes are
    /// session-private report materializations; the change stream skips
    /// them so maintained consumers fold only shared, durable state.
    pub fn is_temp_id(&self, id: TableId) -> bool {
        self.tables
            .values()
            .any(|e| e.id == id && e.temp_owner.is_some())
    }

    /// Removes one table binding (and its index metadata); returns its id.
    pub fn drop_table(&mut self, name: &str) -> Result<TableId> {
        let id = self
            .tables
            .remove(&norm(name))
            .map(|e| e.id)
            .ok_or_else(|| TracError::Catalog(format!("no table named {name}")))?;
        self.indexes.retain(|m| m.table != id);
        self.stats.remove(&id);
        Ok(id)
    }

    /// Drops every temp table belonging to `session`; returns their ids.
    pub fn drop_session_temps(&mut self, session: SessionId) -> Vec<TableId> {
        let doomed: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, e)| e.temp_owner == Some(session))
            .map(|(k, _)| k.clone())
            .collect();
        let ids: Vec<TableId> = doomed
            .iter()
            .filter_map(|k| self.tables.remove(k).map(|e| e.id))
            .collect();
        self.indexes.retain(|m| !ids.contains(&m.table));
        for id in &ids {
            self.stats.remove(id);
        }
        ids
    }

    /// Promotes a temp table to permanent (the paper's "copy to a
    /// permanent table before the end of a session", done in place).
    pub fn persist_temp(&mut self, name: &str) -> Result<()> {
        let e = self
            .tables
            .get_mut(&norm(name))
            .ok_or_else(|| TracError::Catalog(format!("no table named {name}")))?;
        e.temp_owner = None;
        Ok(())
    }

    /// Registers an index.
    pub fn register_index(&mut self, meta: IndexMeta) -> Result<usize> {
        if self.indexes.iter().any(|m| m.name == meta.name) {
            return Err(TracError::Catalog(format!(
                "index {} already exists",
                meta.name
            )));
        }
        self.indexes.push(meta);
        Ok(self.indexes.len() - 1)
    }

    /// All indexes on `table`.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &IndexMeta> {
        self.indexes.iter().filter(move |m| m.table == table)
    }

    /// Finds the index on `(table, column)`, if any.
    pub fn index_on_column(&self, table: TableId, column: usize) -> Option<&IndexMeta> {
        self.indexes
            .iter()
            .find(|m| m.table == table && m.column == column)
    }

    /// Planner statistics for `table`, if any row was ever observed.
    pub fn table_stats(&self, table: TableId) -> Option<&TableStats> {
        self.stats.get(&table)
    }

    /// Mutable planner statistics for `table` (created on first use).
    pub fn table_stats_mut(&mut self, table: TableId) -> &mut TableStats {
        self.stats.entry(table).or_default()
    }

    /// Names of all registered tables (normalized), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut c = Catalog::new();
        c.register_table("Activity", TableId(0)).unwrap();
        assert_eq!(c.lookup_table("activity"), Some(TableId(0)));
        assert_eq!(c.lookup_table("ACTIVITY"), Some(TableId(0)));
        assert!(c.register_table("ACTIVITY", TableId(1)).is_err());
    }

    #[test]
    fn temp_table_lifecycle() {
        let mut c = Catalog::new();
        c.register_temp_table("sys_temp_a1", TableId(1), 7).unwrap();
        c.register_temp_table("sys_temp_e1", TableId(2), 7).unwrap();
        c.register_temp_table("sys_temp_a2", TableId(3), 8).unwrap();
        assert!(c.is_temp("sys_temp_a1"));
        let dropped = c.drop_session_temps(7);
        assert_eq!(dropped.len(), 2);
        assert_eq!(c.lookup_table("sys_temp_a1"), None);
        assert_eq!(c.lookup_table("sys_temp_a2"), Some(TableId(3)));
    }

    #[test]
    fn persist_temp_survives_session_drop() {
        let mut c = Catalog::new();
        c.register_temp_table("keeper", TableId(1), 7).unwrap();
        c.persist_temp("keeper").unwrap();
        assert!(!c.is_temp("keeper"));
        assert!(c.drop_session_temps(7).is_empty());
        assert_eq!(c.lookup_table("keeper"), Some(TableId(1)));
    }

    #[test]
    fn column_stats_track_inserts() {
        let mut s = TableStats::default();
        for n in 0..50i64 {
            s.observe_insert(&[Value::Int(n % 5), Value::text("x")], 7);
        }
        s.observe_insert(&[Value::Null, Value::text("y")], 8);
        s.observe_delete(9);
        assert_eq!(s.rows, 50);
        assert_eq!(s.epoch, 9);
        let c0 = s.column(0).unwrap();
        assert_eq!(c0.nulls, 1);
        assert_eq!(c0.min, Some(Value::Int(0)));
        assert_eq!(c0.max, Some(Value::Int(4)));
        // Linear counting on 5 distinct values lands on (about) 5 and
        // is clamped by the row count.
        let ndv = c0.ndv(s.rows);
        assert!((4..=6).contains(&ndv), "ndv estimate {ndv}");
        let c1 = s.column(1).unwrap();
        assert_eq!(c1.ndv(s.rows), 2);
        // Deletes never shrink min/max or the sketch.
        assert_eq!(c1.min, Some(Value::text("x")));
        assert_eq!(c1.max, Some(Value::text("y")));
    }

    #[test]
    fn stats_prove_null_and_nan_freedom() {
        let mut s = TableStats::default();
        s.observe_insert(&[Value::Float(1.5)], 1);
        assert!(s.column(0).unwrap().proves_non_null());
        assert!(s.column(0).unwrap().proves_nan_free());
        // A positive NaN surfaces as `max` under the storage order.
        s.observe_insert(&[Value::Float(f64::NAN)], 2);
        assert!(!s.column(0).unwrap().proves_nan_free());
        // A negative NaN surfaces as `min`.
        let mut s2 = TableStats::default();
        s2.observe_insert(&[Value::Float(2.0)], 1);
        s2.observe_insert(&[Value::Float(-f64::NAN)], 2);
        assert!(!s2.column(0).unwrap().proves_nan_free());
        // NULLs are counted forever: the proof never un-learns.
        s2.observe_insert(&[Value::Null], 3);
        s2.observe_delete(4);
        assert!(!s2.column(0).unwrap().proves_non_null());
    }

    #[test]
    fn ndv_sketch_saturates() {
        let mut sk = NdvSketch::default();
        assert_eq!(sk.estimate(), 0);
        for n in 0..100_000i64 {
            sk.observe(&Value::Int(n));
        }
        assert_eq!(sk.estimate(), u64::MAX, "full bitmap saturates");
    }

    #[test]
    fn index_registry() {
        let mut c = Catalog::new();
        c.register_table("t", TableId(0)).unwrap();
        c.register_index(IndexMeta {
            name: "t_sid_idx".into(),
            table: TableId(0),
            column: 0,
        })
        .unwrap();
        assert!(c
            .register_index(IndexMeta {
                name: "t_sid_idx".into(),
                table: TableId(0),
                column: 1,
            })
            .is_err());
        assert!(c.index_on_column(TableId(0), 0).is_some());
        assert!(c.index_on_column(TableId(0), 1).is_none());
        assert_eq!(c.indexes_on(TableId(0)).count(), 1);
    }
}
