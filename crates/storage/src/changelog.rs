//! Typed change stream: the heartbeat epoch, materialized as events.
//!
//! PR 4 keyed the prepared-plan cache on a bare epoch counter, so one
//! heartbeat upsert between reports invalidated the whole cached
//! analysis and cost a full rescan. This module upgrades the counter to
//! a *typed change stream*: every mutation entry point publishes a
//! [`ChangeEvent`] describing what moved (heartbeat upsert, tuple
//! insert/delete, raw heartbeat DML), sequenced by a monotone `seq` and
//! stamped with the heartbeat epoch current at publish time. Consumers
//! (the `trac-core` maintained reports) hold a cursor and *fold* the
//! suffix instead of rescanning.
//!
//! The stream is a bounded ring: when it overflows, the oldest events
//! are compacted away and the compaction watermark advances. A consumer
//! whose cursor has fallen behind the watermark gets a clean, typed
//! [`RescanRequired`] signal — never a silently truncated fold. This is
//! overflow handled *by construction*: the only two outcomes are a
//! complete suffix or an explicit demand to rescan.
//!
//! Events are published at **write time**, tagged with the writing
//! transaction's id. An event's effects may therefore belong to a
//! transaction that later aborts, or that is not yet visible to a given
//! reader's snapshot; consumers must filter through
//! [`crate::txn::Snapshot::committed_before`] (and skip aborted
//! writers) before folding. Publishing at write time is the
//! conservative direction — the same choice PR 4 made for the epoch —
//! and the visibility check restores exactness.
//!
//! Coverage of the publication sites is auditable, mirroring
//! [`crate::epoch::audit`]: [`audit`] drives every mutation entry point
//! and records the event kinds each one published; the `trac-analyze`
//! maintenance pass (diagnostic `TRAC028`) diffs them against the
//! declared expectation.

use crate::catalog::TableId;
use crate::lockorder::{self, LockId};
use crate::table::Row;
use crate::txn::TxnId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use trac_types::Value;

/// Default ring capacity of the per-database change log. Large enough
/// that a report-serving session folding at any reasonable cadence
/// never falls behind; small enough that the buffered suffix scan at
/// registration stays cheap.
pub const DEFAULT_CHANGELOG_CAPACITY: usize = 1024;

/// What one mutation did, in the vocabulary a delta-maintained recency
/// report needs.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeData {
    /// A monotone heartbeat advance for `source` ([`crate::heartbeat::upsert`]
    /// or the heartbeat leg of [`crate::db::WriteTxn::ingest`]). `ts` is
    /// the *offered* timestamp: the stored recency is the max of the
    /// current value and `ts`, so folding with `max` is exact even for
    /// a no-op (stale) upsert.
    HeartbeatUpsert {
        /// Source id, as the heartbeat table stores it (text value).
        source: Value,
        /// Offered recency timestamp.
        ts: Value,
    },
    /// A row inserted into a user table (plain SQL DML or ingest).
    RowInsert {
        /// Target table.
        table: TableId,
        /// The inserted row, shared with storage (cheap `Arc` clone).
        row: Row,
    },
    /// A row deleted from a user table. Deletions can shrink a
    /// relevant-source set, which no monotone fold covers; consumers
    /// treat this as a rescan trigger for referenced tables.
    RowDelete {
        /// Target table.
        table: TableId,
    },
    /// Raw transactional DML on the heartbeat table itself, bypassing
    /// the monotone upsert (e.g. SQL `INSERT`/`DELETE` on `heartbeat`).
    /// No monotonicity guarantee holds, so consumers must rescan.
    HeartbeatDml,
}

impl ChangeData {
    /// Stable kind name used by the coverage audit and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ChangeData::HeartbeatUpsert { .. } => "heartbeat-upsert",
            ChangeData::RowInsert { .. } => "row-insert",
            ChangeData::RowDelete { .. } => "row-delete",
            ChangeData::HeartbeatDml => "heartbeat-dml",
        }
    }
}

/// One published change, sequenced and attributed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeEvent {
    /// Monotone position in the stream (dense, starts at 0).
    pub seq: u64,
    /// Heartbeat epoch at publish time — ties the stream to the
    /// sequencing the plan cache already trusted (PR 4/PR 5 audits).
    pub epoch: u64,
    /// The writing transaction. Effects are only real once this commits;
    /// fold through [`crate::txn::Snapshot::committed_before`].
    pub txn: TxnId,
    /// What changed.
    pub data: ChangeData,
}

/// Typed signal that a cursor has fallen behind the compaction
/// watermark: the suffix from `cursor` is no longer complete, and the
/// only sound continuation is a full rescan (after which the consumer
/// re-registers at the current watermark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescanRequired {
    /// The cursor the consumer asked to read from.
    pub cursor: u64,
    /// Lowest sequence number still retained.
    pub compacted_below: u64,
}

impl std::fmt::Display for RescanRequired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "change-stream cursor {} is behind the compaction watermark {}: rescan required",
            self.cursor, self.compacted_below
        )
    }
}

struct Ring {
    buf: VecDeque<ChangeEvent>,
    next_seq: u64,
    compacted_below: u64,
}

/// A bounded, compacting ring of [`ChangeEvent`]s shared by one
/// database. Guarded by its own lock, ranked last in the declared
/// acquisition order ([`LockId::ChangeLog`]): publication happens with
/// no storage lock held, and consumers drain with at most the plan
/// cache held.
pub struct ChangeLog {
    inner: Mutex<Ring>,
    capacity: usize,
}

impl ChangeLog {
    /// A log with the default ring capacity.
    pub fn new() -> ChangeLog {
        ChangeLog::with_capacity(DEFAULT_CHANGELOG_CAPACITY)
    }

    /// A log with an explicit ring capacity (tests exercise the
    /// wraparound boundary with tiny rings).
    pub fn with_capacity(capacity: usize) -> ChangeLog {
        assert!(capacity > 0, "change log capacity must be positive");
        ChangeLog {
            inner: Mutex::new(Ring {
                buf: VecDeque::new(),
                next_seq: 0,
                compacted_below: 0,
            }),
            capacity,
        }
    }

    /// Appends one event, compacting the oldest if the ring is full.
    /// Returns the event's sequence number.
    pub fn publish(&self, txn: TxnId, epoch: u64, data: ChangeData) -> u64 {
        let _order = lockorder::acquire(LockId::ChangeLog);
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.buf.push_back(ChangeEvent {
            seq,
            epoch,
            txn,
            data,
        });
        while ring.buf.len() > self.capacity {
            // By construction the watermark lands exactly past the
            // dropped event: a cursor at or above it still reads a
            // complete suffix, a cursor below it gets RescanRequired.
            if let Some(dropped) = ring.buf.pop_front() {
                ring.compacted_below = dropped.seq + 1;
            }
        }
        seq
    }

    /// The sequence number the next published event will get. Reading
    /// from here returns nothing until something new is published —
    /// this is the registration low watermark.
    pub fn next_seq(&self) -> u64 {
        let _order = lockorder::acquire(LockId::ChangeLog);
        self.inner.lock().next_seq
    }

    /// Lowest sequence number still retained; cursors below this can no
    /// longer read a complete suffix.
    pub fn compacted_below(&self) -> u64 {
        let _order = lockorder::acquire(LockId::ChangeLog);
        self.inner.lock().compacted_below
    }

    /// Returns the complete suffix of events with `seq >= cursor`, or
    /// [`RescanRequired`] when compaction has eaten part of it. A cursor
    /// at `next_seq` yields an empty (and valid) suffix.
    pub fn read_from(&self, cursor: u64) -> Result<Vec<ChangeEvent>, RescanRequired> {
        let _order = lockorder::acquire(LockId::ChangeLog);
        let ring = self.inner.lock();
        if cursor < ring.compacted_below {
            return Err(RescanRequired {
                cursor,
                compacted_below: ring.compacted_below,
            });
        }
        Ok(ring
            .buf
            .iter()
            .filter(|e| e.seq >= cursor)
            .cloned()
            .collect())
    }

    /// Atomically snapshots every buffered event together with the
    /// high-water sequence at the moment of the call. Registration of
    /// maintained report state uses this to scan the watermark window
    /// for events whose transactions are not yet visible to the
    /// registration snapshot — those pin the initial cursor below the
    /// high-water mark so the first fold re-reads them (the DBLog
    /// low/high-watermark rule).
    pub fn window(&self) -> (Vec<ChangeEvent>, u64) {
        let _order = lockorder::acquire(LockId::ChangeLog);
        let ring = self.inner.lock();
        (ring.buf.iter().cloned().collect(), ring.next_seq)
    }
}

impl Default for ChangeLog {
    fn default() -> ChangeLog {
        ChangeLog::new()
    }
}

/// One audited mutation path: the event kinds a delta-maintained
/// consumer needs from it, versus the kinds it actually published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamObservation {
    /// Stable name of the mutation path (used in diagnostics).
    pub name: &'static str,
    /// Event kinds the path must publish, in order, for a maintained
    /// report folding the stream to stay rescan-equivalent.
    pub expected: &'static [&'static str],
    /// Event kinds the path actually published when exercised.
    pub published: Vec<&'static str>,
}

impl StreamObservation {
    /// True when this path violates stream coverage: it published a
    /// different event sequence than maintained consumers rely on.
    pub fn violates_coverage(&self) -> bool {
        self.published != self.expected
    }
}

/// Exercises every mutation entry point of this crate against scratch
/// databases and reports, per path, the typed events it published —
/// the change-stream analogue of [`crate::epoch::audit`]. The
/// `trac-analyze` maintenance pass (diagnostic `TRAC028`) consumes the
/// observations and fails on any divergence from the declared
/// expectations.
pub fn audit() -> trac_types::Result<Vec<StreamObservation>> {
    use crate::db::Database;
    use crate::heartbeat::HEARTBEAT_TABLE;
    use crate::schema::{ColumnDef, TableSchema};
    use trac_types::{ColumnDomain, DataType, SourceId, Timestamp, TracError};

    fn scratch_user_table(db: &Database) -> trac_types::Result<TableId> {
        db.create_table(TableSchema::new(
            "changelog_audit_t",
            vec![
                ColumnDef::new("sid", DataType::Text)
                    .with_domain(ColumnDomain::Any(DataType::Text)),
                ColumnDef::new("v", DataType::Int),
            ],
            Some("sid"),
        )?)
    }

    fn heartbeat_row(source: &str, secs: i64) -> Vec<Value> {
        vec![
            Value::text(source),
            Value::Timestamp(Timestamp::from_secs(secs)),
        ]
    }

    fn visible_heartbeat_slot(
        db: &Database,
        source: &str,
    ) -> trac_types::Result<crate::table::RowSlot> {
        let r = db.begin_read();
        let hb = r.table_id(HEARTBEAT_TABLE)?;
        r.scan_slots(hb)?
            .into_iter()
            .find(|(_, row)| row[0] == Value::text(source))
            .map(|(slot, _)| slot)
            .ok_or_else(|| TracError::Storage(format!("no heartbeat row for {source}")))
    }

    /// Runs `setup`, marks the stream position, runs `op`, and records
    /// the event kinds published by `op` alone.
    fn probe(
        name: &'static str,
        expected: &'static [&'static str],
        setup: impl FnOnce(&Database) -> trac_types::Result<()>,
        op: impl FnOnce(&Database) -> trac_types::Result<()>,
    ) -> trac_types::Result<StreamObservation> {
        let db = Database::new();
        setup(&db)?;
        let mark = db.change_log().next_seq();
        op(&db)?;
        let published = db
            .change_log()
            .read_from(mark)
            .map_err(|e| TracError::Storage(e.to_string()))?
            .iter()
            .map(|e| e.data.kind())
            .collect();
        Ok(StreamObservation {
            name,
            expected,
            published,
        })
    }

    let mut out = Vec::new();
    out.push(probe(
        "user-table insert",
        &["row-insert"],
        |db| scratch_user_table(db).map(|_| ()),
        |db| {
            let tid = db.begin_read().table_id("changelog_audit_t")?;
            db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "user-table delete",
        &["row-delete"],
        |db| {
            let tid = scratch_user_table(db)?;
            db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
            Ok(())
        },
        |db| {
            let r = db.begin_read();
            let tid = r.table_id("changelog_audit_t")?;
            let slot = r.scan_slots(tid)?[0].0;
            db.with_write(|w| w.delete(tid, slot))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "heartbeat-table insert (raw txn)",
        &["heartbeat-dml"],
        |_| Ok(()),
        |db| {
            let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
            db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "heartbeat-table update (raw txn)",
        // An update routes through delete + insert; both legs land on
        // the heartbeat table and each publishes the rescan trigger.
        &["heartbeat-dml", "heartbeat-dml"],
        |db| {
            let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
            db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
            Ok(())
        },
        |db| {
            let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
            let slot = visible_heartbeat_slot(db, "m1")?;
            db.with_write(|w| w.update(hb, slot, heartbeat_row("m1", 20)))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "heartbeat-table delete (raw txn)",
        &["heartbeat-dml"],
        |db| {
            let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
            db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
            Ok(())
        },
        |db| {
            let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
            let slot = visible_heartbeat_slot(db, "m1")?;
            db.with_write(|w| w.delete(hb, slot))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "heartbeat upsert",
        // Exactly one typed event: the raw heartbeat-table writes inside
        // the upsert are suppressed in favour of the semantic event.
        &["heartbeat-upsert"],
        |_| Ok(()),
        |db| {
            db.with_write(|w| w.heartbeat(&SourceId::new("m1"), Timestamp::from_secs(10)))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "heartbeat upsert (stale, no-op)",
        // A stale offer stores nothing but still publishes: the fold is
        // max(current, ts), so the event is harmless and the consumer's
        // cursor stays aligned with the epoch.
        &["heartbeat-upsert"],
        |db| {
            db.with_write(|w| w.heartbeat(&SourceId::new("m1"), Timestamp::from_secs(10)))?;
            Ok(())
        },
        |db| {
            db.with_write(|w| w.heartbeat(&SourceId::new("m1"), Timestamp::from_secs(5)))?;
            Ok(())
        },
    )?);
    out.push(probe(
        "ingest",
        &["row-insert", "heartbeat-upsert"],
        |db| scratch_user_table(db).map(|_| ()),
        |db| {
            let tid = db.begin_read().table_id("changelog_audit_t")?;
            db.with_write(|w| {
                w.ingest(
                    &SourceId::new("m1"),
                    tid,
                    vec![Value::text("m1"), Value::Int(1)],
                    Timestamp::from_secs(10),
                )
            })?;
            Ok(())
        },
    )?);
    out.push(probe(
        "vacuum",
        &[],
        |db| {
            let tid = scratch_user_table(db)?;
            let slot = db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
            db.with_write(|w| w.delete(tid, slot))?;
            Ok(())
        },
        |db| db.vacuum().map(|_| ()),
    )?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> ChangeData {
        ChangeData::RowInsert {
            table: TableId(7),
            row: std::sync::Arc::from(vec![Value::Int(n as i64)].into_boxed_slice()),
        }
    }

    #[test]
    fn sequences_are_dense_and_reads_are_suffixes() {
        let log = ChangeLog::with_capacity(16);
        for n in 0..5 {
            assert_eq!(log.publish(TxnId(1), n, ev(n)), n);
        }
        let all = log.read_from(0).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(log.read_from(3).unwrap().len(), 2);
        // Reading from next_seq is valid and empty.
        assert_eq!(log.read_from(log.next_seq()).unwrap().len(), 0);
    }

    #[test]
    fn overflow_advances_the_watermark_and_rejects_stale_cursors() {
        let log = ChangeLog::with_capacity(4);
        for n in 0..6 {
            log.publish(TxnId(1), n, ev(n));
        }
        // Events 0 and 1 were compacted: the watermark sits at 2.
        assert_eq!(log.compacted_below(), 2);
        let err = log.read_from(0).unwrap_err();
        assert_eq!(
            err,
            RescanRequired {
                cursor: 0,
                compacted_below: 2
            }
        );
        // Exact wraparound boundary: one below the watermark fails ...
        assert!(log.read_from(1).is_err());
        // ... the watermark itself reads the complete retained suffix.
        let suffix = log.read_from(2).unwrap();
        assert_eq!(
            suffix.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn audit_matches_declared_coverage() {
        let obs = audit().unwrap();
        assert_eq!(obs.len(), 9);
        for o in &obs {
            assert!(
                !o.violates_coverage(),
                "mutation path {:?} published {:?}, maintained consumers need {:?}",
                o.name,
                o.published,
                o.expected
            );
        }
        // The heartbeat upsert publishes its semantic event only — the
        // raw table writes inside it are suppressed.
        let upsert = obs.iter().find(|o| o.name == "heartbeat upsert").unwrap();
        assert_eq!(upsert.published, vec!["heartbeat-upsert"]);
    }
}
