//! The [`Database`] facade: DDL, transactions, reads, writes, ingestion.
//!
//! A `Database` is cheaply cloneable (all clones share state). Reads go
//! through [`ReadTxn`] — a snapshot view — and writes through [`WriteTxn`],
//! which also exposes the *ingestion* path used by monitoring processes:
//! [`WriteTxn::ingest`] tags a row with its data source, stores it, and
//! advances the source's recency timestamp in the `Heartbeat` table in the
//! same transaction (paper Sections 3.1 and 3.3).

use crate::catalog::{Catalog, IndexMeta, SessionId, TableId, TableStats};
use crate::changelog::{ChangeData, ChangeLog};
use crate::heartbeat::{self, HEARTBEAT_TABLE};
use crate::index::Index;
use crate::lockorder::{self, LockId};
use crate::schema::TableSchema;
use crate::table::{Row, RowSlot, Table};
use crate::txn::{Snapshot, TxnId, TxnManager, TxnStatus};
use parking_lot::{Mutex, RwLock};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use trac_types::{Result, SourceId, Timestamp, TracError, Value};

struct Stored {
    table: Table,
    indexes: Vec<Index>,
}

struct DbInner {
    stores: Vec<Option<Stored>>,
    catalog: Catalog,
}

struct DbState {
    txns: Arc<TxnManager>,
    data: RwLock<DbInner>,
    next_session: AtomicU64,
    /// Bumped on every mutation that can change recency-relevant state:
    /// heartbeat upserts (including the one inside `ingest`) *and* any
    /// raw transactional write that touches the heartbeat table (SQL DML
    /// reaches the table through `WriteTxn::insert`/`delete` without
    /// going through `heartbeat()`). Cached recency analyses are
    /// invalidated when this moves; bumping at write time rather than
    /// commit time is conservative (an aborted heartbeat still
    /// invalidates), which is the sound direction for a cache. Coverage
    /// of the bump is audited by [`crate::epoch::audit`].
    heartbeat_epoch: AtomicU64,
    /// The epoch, materialized: every mutation that the epoch counter
    /// summarizes also publishes a typed [`ChangeData`] event here, so
    /// consumers can *fold* what changed instead of rescanning.
    /// Coverage of the publication sites is audited by
    /// [`crate::changelog::audit`].
    changes: ChangeLog,
}

/// Advances the heartbeat epoch. Must be called with no storage lock
/// held: the epoch yield hook may park the thread (the interleaving
/// explorer treats the bump as a schedule point).
fn bump_heartbeat_epoch(state: &DbState) {
    crate::epoch::epoch_yield();
    state.heartbeat_epoch.fetch_add(1, AtomicOrdering::Release);
}

/// True when `tid` is the system heartbeat table, i.e. a raw write to it
/// changes recency-relevant state and must bump the epoch.
fn is_heartbeat_table(inner: &DbInner, tid: TableId) -> bool {
    inner.catalog.lookup_table(HEARTBEAT_TABLE) == Some(tid)
}

/// An embedded multi-versioned database.
#[derive(Clone)]
pub struct Database {
    state: Arc<DbState>,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    /// Creates a database with the system `Heartbeat` table (indexed on
    /// its source column) already in place.
    pub fn new() -> Database {
        let db = Database {
            state: Arc::new(DbState {
                txns: TxnManager::new(),
                data: RwLock::new(DbInner {
                    stores: Vec::new(),
                    catalog: Catalog::new(),
                }),
                next_session: AtomicU64::new(1),
                heartbeat_epoch: AtomicU64::new(0),
                changes: ChangeLog::new(),
            }),
        };
        // PANIC-OK: static bootstrap at Db::new, before any query exists.
        db.create_table(heartbeat::heartbeat_schema())
            .expect("bootstrap heartbeat table");
        // PANIC-OK: static bootstrap at Db::new, before any query exists.
        db.create_index(HEARTBEAT_TABLE, heartbeat::HEARTBEAT_SID_COL)
            .expect("bootstrap heartbeat index");
        db
    }

    /// The shared transaction manager.
    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.state.txns
    }

    /// Current heartbeat epoch: a counter bumped on every heartbeat
    /// upsert. Callers caching heartbeat-derived state (e.g. prepared
    /// recency plans) compare epochs to decide whether to invalidate.
    pub fn heartbeat_epoch(&self) -> u64 {
        self.state.heartbeat_epoch.load(AtomicOrdering::Acquire)
    }

    /// The database's typed change stream. Consumers hold a cursor
    /// (sequence number) and read complete suffixes; see
    /// [`crate::changelog::ChangeLog::read_from`].
    pub fn change_log(&self) -> &ChangeLog {
        &self.state.changes
    }

    /// Creates a permanent table.
    pub fn create_table(&self, schema: TableSchema) -> Result<TableId> {
        let mut inner = self.state.data.write();
        let id = TableId(inner.stores.len());
        inner.catalog.register_table(&schema.name, id)?;
        inner.stores.push(Some(Stored {
            table: Table::new(schema),
            indexes: Vec::new(),
        }));
        Ok(id)
    }

    /// Creates a session-scoped temp table.
    pub fn create_temp_table(&self, schema: TableSchema, session: SessionId) -> Result<TableId> {
        let mut inner = self.state.data.write();
        let id = TableId(inner.stores.len());
        inner
            .catalog
            .register_temp_table(&schema.name, id, session)?;
        inner.stores.push(Some(Stored {
            table: Table::new(schema),
            indexes: Vec::new(),
        }));
        Ok(id)
    }

    /// Drops a table by name.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut inner = self.state.data.write();
        let id = inner.catalog.drop_table(name)?;
        inner.stores[id.0] = None;
        Ok(())
    }

    /// Drops all temp tables owned by `session`.
    pub fn drop_session_temps(&self, session: SessionId) {
        let mut inner = self.state.data.write();
        for id in inner.catalog.drop_session_temps(session) {
            inner.stores[id.0] = None;
        }
    }

    /// Promotes a session temp table to a permanent table.
    pub fn persist_temp_table(&self, name: &str) -> Result<()> {
        self.state.data.write().catalog.persist_temp(name)
    }

    /// Allocates a fresh session id.
    pub fn new_session_id(&self) -> SessionId {
        self.state
            .next_session
            .fetch_add(1, AtomicOrdering::Relaxed)
    }

    /// Builds an ordered index on `table.column`, backfilling existing
    /// committed versions.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let mut inner = self.state.data.write();
        let tid = inner
            .catalog
            .lookup_table(table)
            .ok_or_else(|| TracError::Catalog(format!("no table named {table}")))?;
        let store = inner.stores[tid.0]
            .as_ref()
            .ok_or_else(|| TracError::Catalog(format!("table {table} was dropped")))?;
        let col =
            store.table.schema.column_index(column).ok_or_else(|| {
                TracError::Catalog(format!("no column {column} in table {table}"))
            })?;
        if inner.catalog.index_on_column(tid, col).is_some() {
            return Err(TracError::Catalog(format!(
                "index on {table}.{column} already exists"
            )));
        }
        inner.catalog.register_index(IndexMeta {
            name: format!("{table}_{column}_idx"),
            table: tid,
            column: col,
        })?;
        let store = inner.stores[tid.0]
            .as_mut()
            .ok_or_else(|| TracError::Storage(format!("table {table} has no backing store")))?;
        let mut index = Index::new(col);
        for slot in 0..store.table.version_count() {
            let v = store.table.version(RowSlot(slot)).ok_or_else(|| {
                TracError::Storage(format!("table {table} lost version slot {slot} mid-build"))
            })?;
            index.insert(&v.values[col], RowSlot(slot));
        }
        store.indexes.push(index);
        Ok(())
    }

    /// Opens a read-only snapshot transaction.
    pub fn begin_read(&self) -> ReadTxn {
        ReadTxn {
            state: Arc::clone(&self.state),
            snapshot: self.state.txns.snapshot(),
            own: None,
        }
    }

    /// Opens a read-write transaction.
    pub fn begin_write(&self) -> WriteTxn {
        let id = self.state.txns.begin();
        WriteTxn {
            read: ReadTxn {
                state: Arc::clone(&self.state),
                snapshot: self.state.txns.snapshot(),
                own: Some(id),
            },
            id,
            stamped: Mutex::new(Vec::new()),
            suppress_events: std::sync::atomic::AtomicBool::new(false),
            finished: false,
        }
    }

    /// Reclaims dead row versions: versions created by aborted
    /// transactions, and versions whose deletion is visible to every
    /// outstanding snapshot. Indexes are rebuilt over the survivors.
    ///
    /// Long-lived monitoring databases need this: every heartbeat upsert
    /// supersedes a version, so without vacuum the `Heartbeat` table's
    /// physical size grows with total update count rather than source
    /// count.
    ///
    /// Preconditions: no transaction may be in progress (checked), and
    /// callers must not hold `RowSlot`s across the call (slots are
    /// renumbered). Open read snapshots are safe — versions they can
    /// still see are retained.
    pub fn vacuum(&self) -> Result<VacuumStats> {
        if self.state.txns.any_in_progress() {
            return Err(TracError::Storage(
                "vacuum requires no in-progress transactions".into(),
            ));
        }
        let txns = Arc::clone(&self.state.txns);
        let _order = lockorder::acquire(LockId::DbData);
        let mut inner = self.state.data.write();
        let mut stats = VacuumStats::default();
        for store in inner.stores.iter_mut().flatten() {
            let removed = store.table.compact(|v| {
                txns.status(v.xmin) == TxnStatus::Aborted
                    || v.xmax
                        .is_some_and(|x| txns.committed_before_all_snapshots(x))
            });
            if removed > 0 {
                for idx in &mut store.indexes {
                    let col = idx.column;
                    let mut fresh = Index::new(col);
                    for (slot, v) in store.table.all_versions() {
                        fresh.insert(&v.values[col], slot);
                    }
                    *idx = fresh;
                }
            }
            stats.tables += 1;
            stats.versions_removed += removed;
            stats.versions_kept += store.table.version_count();
        }
        Ok(stats)
    }

    /// Applies `f` to the planner statistics of `tid`. Intended for
    /// tests and experiments that steer the cost-based planner into a
    /// specific shape: plan *choice* may change, results never do, and
    /// the differential suite asserts exactly that.
    pub fn update_table_stats(&self, tid: TableId, f: impl FnOnce(&mut TableStats)) {
        let mut inner = self.state.data.write();
        f(inner.catalog.table_stats_mut(tid));
    }

    /// Convenience: run `f` in a write transaction, committing on `Ok`.
    pub fn with_write<T>(&self, f: impl FnOnce(&WriteTxn) -> Result<T>) -> Result<T> {
        let txn = self.begin_write();
        match f(&txn) {
            Ok(v) => {
                txn.commit();
                Ok(v)
            }
            Err(e) => {
                txn.abort();
                Err(e)
            }
        }
    }
}

/// Counters returned by [`Database::vacuum`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Tables visited.
    pub tables: usize,
    /// Row versions reclaimed.
    pub versions_removed: usize,
    /// Row versions surviving.
    pub versions_kept: usize,
}

/// A snapshot view of the database for reading.
pub struct ReadTxn {
    state: Arc<DbState>,
    /// The MVCC snapshot this view reads through. Exposed so higher
    /// layers can assert user query and recency query share one snapshot.
    pub snapshot: Snapshot,
    own: Option<TxnId>,
}

impl ReadTxn {
    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.state
            .data
            .read()
            .catalog
            .lookup_table(name)
            .ok_or_else(|| TracError::Catalog(format!("no table named {name}")))
    }

    /// Clones the schema of `tid`.
    pub fn schema(&self, tid: TableId) -> Result<TableSchema> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?.table.schema.clone())
    }

    /// All table names currently in the catalog.
    pub fn table_names(&self) -> Vec<String> {
        self.state.data.read().catalog.table_names()
    }

    /// True when `name` is a session temp table.
    pub fn is_temp_table(&self, name: &str) -> bool {
        self.state.data.read().catalog.is_temp(name)
    }

    /// Positions of the indexed columns of `tid`.
    pub fn index_columns(&self, tid: TableId) -> Vec<usize> {
        self.state
            .data
            .read()
            .catalog
            .indexes_on(tid)
            .map(|m| m.column)
            .collect()
    }

    /// True when `tid.column` has an ordered index.
    pub fn has_index(&self, tid: TableId, column: usize) -> bool {
        self.state
            .data
            .read()
            .catalog
            .index_on_column(tid, column)
            .is_some()
    }

    /// Full scan of the rows visible in this snapshot.
    pub fn scan(&self, tid: TableId) -> Result<Vec<Row>> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?
            .table
            .scan_visible(&self.snapshot, self.own)
            .map(|(_, r)| r)
            .collect())
    }

    /// Full scan including physical slots (for updates/deletes).
    pub fn scan_slots(&self, tid: TableId) -> Result<Vec<(RowSlot, Row)>> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?
            .table
            .scan_visible(&self.snapshot, self.own)
            .collect())
    }

    /// Streams visible rows to `pred` under the read latch, returning the
    /// first row for which `pred` is true — an early-exit existence probe
    /// that avoids materializing the scan.
    pub fn scan_find(
        &self,
        tid: TableId,
        mut pred: impl FnMut(&Row) -> Result<bool>,
    ) -> Result<Option<Row>> {
        let inner = self.state.data.read();
        for (_, row) in store(&inner, tid)?
            .table
            .scan_visible(&self.snapshot, self.own)
        {
            if pred(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    /// Number of visible rows.
    pub fn row_count(&self, tid: TableId) -> Result<usize> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?
            .table
            .scan_visible(&self.snapshot, self.own)
            .count())
    }

    /// Index probe: visible rows whose `column` equals any of `keys`.
    /// Returns `None` when no index exists on that column.
    pub fn index_probe_in(
        &self,
        tid: TableId,
        column: usize,
        keys: &[Value],
    ) -> Result<Option<Vec<Row>>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let Some(idx) = st.indexes.iter().find(|i| i.column == column) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for slot in idx.probe_in(keys) {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                out.push(row);
            }
        }
        Ok(Some(out))
    }

    /// Index probe returning `(slot, row)` pairs for updates/deletes;
    /// `None` when no index exists on that column.
    pub fn index_probe_in_slots(
        &self,
        tid: TableId,
        column: usize,
        keys: &[Value],
    ) -> Result<Option<Vec<(RowSlot, Row)>>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let Some(idx) = st.indexes.iter().find(|i| i.column == column) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for slot in idx.probe_in(keys) {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                out.push((slot, row));
            }
        }
        Ok(Some(out))
    }

    /// Index probe over a key range; `None` when no index exists.
    pub fn index_probe_range(
        &self,
        tid: TableId,
        column: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<Option<Vec<Row>>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let Some(idx) = st.indexes.iter().find(|i| i.column == column) else {
            return Ok(None);
        };
        let mut out = Vec::new();
        for slot in idx.probe_range(lo, hi) {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                out.push(row);
            }
        }
        Ok(Some(out))
    }

    /// Fetches the visible row at `slot`, if any.
    pub fn row_at(&self, tid: TableId, slot: RowSlot) -> Result<Option<Row>> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?
            .table
            .visible_at(slot, &self.snapshot, self.own))
    }

    /// Planner statistics for `tid` — a cheap clone of the write-path
    /// counters (see [`crate::catalog::TableStats`] for the estimate
    /// semantics). Empty default stats when no write was ever observed.
    pub fn table_stats(&self, tid: TableId) -> TableStats {
        self.state
            .data
            .read()
            .catalog
            .table_stats(tid)
            .cloned()
            .unwrap_or_default()
    }

    /// The extreme key of the index on `tid.column` that still has a
    /// visible row: the smallest (`max == false`) or largest key, in
    /// `Value` order. `None` when every indexed row is invisible or the
    /// index is empty. Errors when no index exists on that column.
    ///
    /// Because the index never stores NULL keys and MIN/MAX skip NULLs,
    /// this equals `MIN(col)`/`MAX(col)` whenever `Value` order and SQL
    /// comparison agree on the column (any homogeneous non-float
    /// column) — the applicability condition the planner checks before
    /// emitting the fast path.
    pub fn index_extreme(&self, tid: TableId, column: usize, max: bool) -> Result<Option<Value>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let idx = st
            .indexes
            .iter()
            .find(|i| i.column == column)
            .ok_or_else(|| TracError::Execution("index vanished mid-plan".into()))?;
        for slot in idx.ordered_slots(max) {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                return Ok(Some(row[column].clone()));
            }
        }
        Ok(None)
    }

    /// Walks the visible rows of `tid` in index-key order on `column`
    /// (ascending, or descending when `desc`), calling `visit` per row
    /// until it returns `false`. The enumeration order equals a stable
    /// sort of the table on that column (see
    /// [`crate::index::Index::ordered_slots`]); NULL-keyed rows are
    /// absent. Errors when no index exists on that column.
    pub fn index_ordered_scan(
        &self,
        tid: TableId,
        column: usize,
        desc: bool,
        mut visit: impl FnMut(Row) -> Result<bool>,
    ) -> Result<()> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let idx = st
            .indexes
            .iter()
            .find(|i| i.column == column)
            .ok_or_else(|| TracError::Execution("index vanished mid-plan".into()))?;
        for slot in idx.ordered_slots(desc) {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                if !visit(row)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Heartbeat epoch observed through this transaction's database.
    /// See [`Database::heartbeat_epoch`].
    pub fn heartbeat_epoch(&self) -> u64 {
        self.state.heartbeat_epoch.load(AtomicOrdering::Acquire)
    }

    /// Number of physical version slots in `tid` (an upper bound on the
    /// slot space, not the visible row count). Morsel-driven scans
    /// partition `0..version_slot_count` into ranges; each worker then
    /// applies MVCC visibility per slot via [`ReadTxn::scan_slot_range`].
    pub fn version_slot_count(&self, tid: TableId) -> Result<usize> {
        let inner = self.state.data.read();
        Ok(store(&inner, tid)?.table.version_count())
    }

    /// Visible rows among the physical slots `lo..hi`, in slot order.
    /// Concatenating consecutive ranges reproduces [`ReadTxn::scan`]
    /// exactly, so morsel-ordered merges stay byte-identical to a
    /// serial scan. Each call takes its own shared read latch, so
    /// parallel workers never serialize on the table.
    pub fn scan_slot_range(&self, tid: TableId, lo: usize, hi: usize) -> Result<Vec<Row>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let hi = hi.min(st.table.version_count());
        let mut out = Vec::new();
        for slot in lo..hi {
            if let Some(row) = st.table.visible_at(RowSlot(slot), &self.snapshot, self.own) {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Resolves the visible rows for an explicit slot list (one index
    /// morsel), preserving slot-list order.
    pub fn rows_for_slots(&self, tid: TableId, slots: &[RowSlot]) -> Result<Vec<Row>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let mut out = Vec::with_capacity(slots.len());
        for &slot in slots {
            if let Some(row) = st.table.visible_at(slot, &self.snapshot, self.own) {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Index `IN` probe split into morsel-sized slot chunks: the flat
    /// chunk concatenation equals the slot order of
    /// [`ReadTxn::index_probe_in`] (keys in the given order, each key's
    /// postings in index order). Chunks never span a key boundary —
    /// they come from the per-key range cursor
    /// ([`crate::index::Index::probe_range_chunks`]) so the full posting list
    /// is never materialized in one allocation. Returns `None` when no
    /// index exists on `column`. Visibility is *not* checked here;
    /// workers resolve each chunk via [`ReadTxn::rows_for_slots`].
    pub fn index_probe_in_chunks(
        &self,
        tid: TableId,
        column: usize,
        keys: &[Value],
        chunk: usize,
    ) -> Result<Option<Vec<Vec<RowSlot>>>> {
        let inner = self.state.data.read();
        let st = store(&inner, tid)?;
        let Some(idx) = st.indexes.iter().find(|i| i.column == column) else {
            return Ok(None);
        };
        let mut chunks = Vec::new();
        for key in keys {
            chunks.extend(idx.probe_range_chunks(
                Bound::Included(key),
                Bound::Included(key),
                chunk,
            ));
        }
        Ok(Some(chunks))
    }
}

fn store(inner: &DbInner, tid: TableId) -> Result<&Stored> {
    inner
        .stores
        .get(tid.0)
        .and_then(|s| s.as_ref())
        .ok_or_else(|| TracError::Catalog(format!("table {tid:?} was dropped")))
}

fn store_mut(inner: &mut DbInner, tid: TableId) -> Result<&mut Stored> {
    inner
        .stores
        .get_mut(tid.0)
        .and_then(|s| s.as_mut())
        .ok_or_else(|| TracError::Catalog(format!("table {tid:?} was dropped")))
}

/// A read-write transaction. Uncommitted effects are visible only to the
/// transaction itself; dropping without committing aborts.
pub struct WriteTxn {
    read: ReadTxn,
    id: TxnId,
    /// Versions this txn stamped `xmax` on — unstamped again on abort.
    stamped: Mutex<Vec<(TableId, RowSlot)>>,
    /// While set, `insert`/`delete` publish no change events. Used by
    /// [`WriteTxn::heartbeat`] so the monotone upsert surfaces as one
    /// semantic `HeartbeatUpsert` event instead of its raw table writes.
    suppress_events: std::sync::atomic::AtomicBool,
    finished: bool,
}

impl std::ops::Deref for WriteTxn {
    type Target = ReadTxn;
    fn deref(&self) -> &ReadTxn {
        &self.read
    }
}

impl WriteTxn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Publishes one typed change event on behalf of this transaction,
    /// unless suppressed. Called with no storage lock held (the change
    /// log's own lock ranks last in the declared order).
    fn publish_change(&self, data: ChangeData) {
        if self.suppress_events.load(AtomicOrdering::Relaxed) {
            return;
        }
        let epoch = self
            .read
            .state
            .heartbeat_epoch
            .load(AtomicOrdering::Acquire);
        self.read.state.changes.publish(self.id, epoch, data);
    }

    /// Inserts a row (schema-checked and coerced). Returns its slot.
    /// Writes landing in the heartbeat table bump the heartbeat epoch —
    /// SQL DML reaches recency state through this entry point, bypassing
    /// [`WriteTxn::heartbeat`], and a cached recency plan must not
    /// survive it.
    pub fn insert(&self, tid: TableId, row: Vec<Value>) -> Result<RowSlot> {
        let _order = lockorder::acquire(LockId::DbData);
        let mut inner = self.read.state.data.write();
        let touches_heartbeat = is_heartbeat_table(&inner, tid);
        let is_temp = inner.catalog.is_temp_id(tid);
        let st = store_mut(&mut inner, tid)?;
        let row = st.table.schema.check_row(row)?;
        let row: Row = Arc::from(row.into_boxed_slice());
        let slot = st.table.append(Arc::clone(&row), self.id);
        for idx in &mut st.indexes {
            idx.insert(&row[idx.column], slot);
        }
        let epoch = self
            .read
            .state
            .heartbeat_epoch
            .load(AtomicOrdering::Acquire);
        inner
            .catalog
            .table_stats_mut(tid)
            .observe_insert(&row, epoch);
        drop(inner);
        if touches_heartbeat {
            bump_heartbeat_epoch(&self.read.state);
            // Raw DML on the heartbeat table bypasses the monotone
            // upsert: no fold stays exact, so the typed event is the
            // rescan trigger (the semantic upsert suppresses this and
            // publishes `HeartbeatUpsert` instead).
            self.publish_change(ChangeData::HeartbeatDml);
        } else if !is_temp {
            self.publish_change(ChangeData::RowInsert { table: tid, row });
        }
        Ok(slot)
    }

    /// Deletes the row at `slot` (it must be visible to this txn).
    /// Deletes from the heartbeat table bump the heartbeat epoch (see
    /// [`WriteTxn::insert`]; updates route through delete + insert).
    pub fn delete(&self, tid: TableId, slot: RowSlot) -> Result<()> {
        let txns = Arc::clone(&self.read.state.txns);
        let _order = lockorder::acquire(LockId::DbData);
        let mut inner = self.read.state.data.write();
        let touches_heartbeat = is_heartbeat_table(&inner, tid);
        let is_temp = inner.catalog.is_temp_id(tid);
        let st = store_mut(&mut inner, tid)?;
        if st
            .table
            .visible_at(slot, &self.read.snapshot, Some(self.id))
            .is_none()
        {
            return Err(TracError::Storage(format!(
                "delete target {slot:?} is not visible to {}",
                self.id
            )));
        }
        st.table
            .delete_version(slot, self.id, |x| txns.status(x) != TxnStatus::Aborted)?;
        {
            let _stamped_order = lockorder::acquire(LockId::TxnStamped);
            self.stamped.lock().push((tid, slot));
        }
        let epoch = self
            .read
            .state
            .heartbeat_epoch
            .load(AtomicOrdering::Acquire);
        inner.catalog.table_stats_mut(tid).observe_delete(epoch);
        drop(inner);
        if touches_heartbeat {
            bump_heartbeat_epoch(&self.read.state);
            self.publish_change(ChangeData::HeartbeatDml);
        } else if !is_temp {
            self.publish_change(ChangeData::RowDelete { table: tid });
        }
        Ok(())
    }

    /// Updates the row at `slot` to `new_row`; returns the new slot.
    pub fn update(&self, tid: TableId, slot: RowSlot, new_row: Vec<Value>) -> Result<RowSlot> {
        self.delete(tid, slot)?;
        self.insert(tid, new_row)
    }

    /// Ingests one update from a data source (paper Section 3.1): the
    /// row's source column must equal `source` (the tagging discipline of
    /// Section 3.3), and the source's recency timestamp in `Heartbeat`
    /// advances to at least `event_time`, all in this transaction.
    pub fn ingest(
        &self,
        source: &SourceId,
        tid: TableId,
        row: Vec<Value>,
        event_time: Timestamp,
    ) -> Result<RowSlot> {
        let schema = self.read.schema(tid)?;
        let sc = schema.source_column.ok_or_else(|| {
            TracError::Constraint(format!(
                "table {} has no data source column; use insert()",
                schema.name
            ))
        })?;
        match row.get(sc) {
            Some(v) if v.as_text() == Some(source.as_str()) => {}
            _ => {
                return Err(TracError::Constraint(format!(
                    "update from source {source} must carry {source} in {}.{}",
                    schema.name, schema.columns[sc].name
                )))
            }
        }
        let epoch_before = self.read.heartbeat_epoch();
        let slot = self.insert(tid, row)?;
        self.heartbeat(source, event_time)?;
        debug_assert!(
            self.read.heartbeat_epoch() > epoch_before,
            "ingest must advance the heartbeat epoch"
        );
        Ok(slot)
    }

    /// Advances `source`'s recency timestamp monotonically (an explicit
    /// "nothing to report" beacon, Section 3.1).
    pub fn heartbeat(&self, source: &SourceId, ts: Timestamp) -> Result<()> {
        let epoch_before = self.read.heartbeat_epoch();
        // The upsert's raw heartbeat-table writes are suppressed on the
        // change stream: the one semantic `HeartbeatUpsert` event below
        // carries strictly more information (max-fold is exact), and
        // maintained consumers must not see the same advance twice.
        self.suppress_events.store(true, AtomicOrdering::Relaxed);
        let upserted = heartbeat::upsert(self, source, ts);
        self.suppress_events.store(false, AtomicOrdering::Relaxed);
        upserted?;
        // The upsert's own heartbeat-table write already bumped when it
        // stored anything; this explicit bump also covers the no-op case
        // (ts older than current), staying conservative.
        bump_heartbeat_epoch(&self.read.state);
        self.publish_change(ChangeData::HeartbeatUpsert {
            source: Value::text(source.as_str()),
            ts: Value::Timestamp(ts),
        });
        debug_assert!(
            self.read.heartbeat_epoch() > epoch_before,
            "heartbeat must advance the heartbeat epoch"
        );
        Ok(())
    }

    /// Commits; all effects become visible to later snapshots.
    pub fn commit(mut self) {
        self.read.state.txns.commit(self.id);
        self.finished = true;
    }

    /// Aborts; all effects vanish.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if self.finished {
            return;
        }
        self.read.state.txns.abort(self.id);
        let _order = lockorder::acquire(LockId::DbData);
        let mut inner = self.read.state.data.write();
        let _stamped_order = lockorder::acquire(LockId::TxnStamped);
        for (tid, slot) in self.stamped.lock().drain(..) {
            if let Ok(st) = store_mut(&mut inner, tid) {
                st.table.unstamp(slot, self.id);
            }
        }
        self.finished = true;
    }
}

impl Drop for WriteTxn {
    fn drop(&mut self) {
        self.do_abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use trac_types::{ColumnDomain, DataType};

    fn activity(db: &Database) -> TableId {
        db.create_table(
            TableSchema::new(
                "activity",
                vec![
                    ColumnDef::new("mach_id", DataType::Text),
                    ColumnDef::new("value", DataType::Text)
                        .with_domain(ColumnDomain::text_set(["idle", "busy"])),
                    ColumnDef::new("event_time", DataType::Timestamp),
                ],
                Some("mach_id"),
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn act_row(m: &str, v: &str, secs: i64) -> Vec<Value> {
        vec![
            Value::text(m),
            Value::text(v),
            Value::Timestamp(Timestamp::from_secs(secs)),
        ]
    }

    #[test]
    fn bootstrap_creates_heartbeat() {
        let db = Database::new();
        let r = db.begin_read();
        let hb = r.table_id(HEARTBEAT_TABLE).unwrap();
        let schema = r.schema(hb).unwrap();
        assert_eq!(schema.source_column, Some(0));
        assert!(r.has_index(hb, 0));
    }

    #[test]
    fn insert_commit_visibility() {
        let db = Database::new();
        let tid = activity(&db);
        let before = db.begin_read();
        let w = db.begin_write();
        w.insert(tid, act_row("m1", "idle", 100)).unwrap();
        // Visible to writer, not to pre-existing or concurrent snapshots.
        assert_eq!(w.scan(tid).unwrap().len(), 1);
        assert_eq!(before.scan(tid).unwrap().len(), 0);
        assert_eq!(db.begin_read().scan(tid).unwrap().len(), 0);
        w.commit();
        assert_eq!(db.begin_read().scan(tid).unwrap().len(), 1);
        assert_eq!(before.scan(tid).unwrap().len(), 0, "old snapshot stable");
    }

    #[test]
    fn abort_discards_effects() {
        let db = Database::new();
        let tid = activity(&db);
        let w = db.begin_write();
        w.insert(tid, act_row("m1", "idle", 100)).unwrap();
        w.abort();
        assert_eq!(db.begin_read().scan(tid).unwrap().len(), 0);
    }

    #[test]
    fn drop_aborts_unfinished_txn() {
        let db = Database::new();
        let tid = activity(&db);
        {
            let w = db.begin_write();
            w.insert(tid, act_row("m1", "idle", 100)).unwrap();
            // dropped without commit
        }
        assert_eq!(db.begin_read().scan(tid).unwrap().len(), 0);
    }

    #[test]
    fn update_replaces_row() {
        let db = Database::new();
        let tid = activity(&db);
        let slot = db
            .with_write(|w| w.insert(tid, act_row("m1", "busy", 100)))
            .unwrap();
        db.with_write(|w| w.update(tid, slot, act_row("m1", "idle", 200)))
            .unwrap();
        let rows = db.begin_read().scan(tid).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::text("idle"));
    }

    #[test]
    fn ingest_enforces_source_tagging_and_advances_heartbeat() {
        let db = Database::new();
        let tid = activity(&db);
        let m1 = SourceId::new("m1");
        // Wrong source tag is rejected.
        let err = db
            .with_write(|w| {
                w.ingest(
                    &m1,
                    tid,
                    act_row("m2", "idle", 50),
                    Timestamp::from_secs(50),
                )
            })
            .unwrap_err();
        assert_eq!(err.kind(), "constraint");
        // Correct ingest stores the row and the heartbeat.
        db.with_write(|w| {
            w.ingest(
                &m1,
                tid,
                act_row("m1", "idle", 100),
                Timestamp::from_secs(100),
            )
        })
        .unwrap();
        let r = db.begin_read();
        assert_eq!(
            heartbeat::recency_of(&r, &m1).unwrap(),
            Some(Timestamp::from_secs(100))
        );
        // Heartbeat is monotone: an older event does not regress it.
        db.with_write(|w| {
            w.ingest(
                &m1,
                tid,
                act_row("m1", "busy", 80),
                Timestamp::from_secs(80),
            )
        })
        .unwrap();
        let r = db.begin_read();
        assert_eq!(
            heartbeat::recency_of(&r, &m1).unwrap(),
            Some(Timestamp::from_secs(100))
        );
        assert_eq!(r.scan(tid).unwrap().len(), 2);
    }

    #[test]
    fn index_probe_sees_only_visible_rows() {
        let db = Database::new();
        let tid = activity(&db);
        db.create_index("activity", "mach_id").unwrap();
        db.with_write(|w| {
            w.insert(tid, act_row("m1", "idle", 1))?;
            w.insert(tid, act_row("m2", "busy", 2))?;
            w.insert(tid, act_row("m1", "busy", 3))
        })
        .unwrap();
        let r = db.begin_read();
        let hits = r
            .index_probe_in(tid, 0, &[Value::text("m1")])
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 2);
        // Probe on unindexed column reports no index.
        assert!(r
            .index_probe_in(tid, 1, &[Value::text("idle")])
            .unwrap()
            .is_none());
        // Delete one m1 row; a fresh snapshot sees one hit, old sees two.
        let (slot, _) = db
            .begin_read()
            .scan_slots(tid)
            .unwrap()
            .into_iter()
            .find(|(_, row)| row[0] == Value::text("m1") && row[1] == Value::text("idle"))
            .unwrap();
        db.with_write(|w| w.delete(tid, slot)).unwrap();
        let fresh = db.begin_read();
        assert_eq!(
            fresh
                .index_probe_in(tid, 0, &[Value::text("m1")])
                .unwrap()
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            r.index_probe_in(tid, 0, &[Value::text("m1")])
                .unwrap()
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn index_backfills_existing_rows() {
        let db = Database::new();
        let tid = activity(&db);
        db.with_write(|w| w.insert(tid, act_row("m7", "idle", 1)))
            .unwrap();
        db.create_index("activity", "value").unwrap();
        let r = db.begin_read();
        let hits = r
            .index_probe_in(tid, 1, &[Value::text("idle")])
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][0], Value::text("m7"));
    }

    #[test]
    fn temp_tables_dropped_with_session() {
        let db = Database::new();
        let session = db.new_session_id();
        let schema = TableSchema::new(
            "sys_temp_a1",
            vec![ColumnDef::new("sid", DataType::Text)],
            None,
        )
        .unwrap();
        let tid = db.create_temp_table(schema, session).unwrap();
        db.with_write(|w| w.insert(tid, vec![Value::text("m1")]))
            .unwrap();
        assert!(db.begin_read().table_id("sys_temp_a1").is_ok());
        db.drop_session_temps(session);
        assert!(db.begin_read().table_id("sys_temp_a1").is_err());
    }

    #[test]
    fn range_probe() {
        let db = Database::new();
        let tid = activity(&db);
        db.create_index("activity", "event_time").unwrap();
        db.with_write(|w| {
            for s in 0..10 {
                w.insert(tid, act_row("m1", "idle", s))?;
            }
            Ok(())
        })
        .unwrap();
        let r = db.begin_read();
        let lo = Value::Timestamp(Timestamp::from_secs(3));
        let hi = Value::Timestamp(Timestamp::from_secs(7));
        let hits = r
            .index_probe_range(tid, 2, Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn vacuum_reclaims_heartbeat_churn() {
        let db = Database::new();
        let s = SourceId::new("m1");
        // 100 heartbeat upserts: 1 live version + 99 dead ones.
        for i in 1..=100 {
            db.with_write(|w| w.heartbeat(&s, Timestamp::from_secs(i)))
                .unwrap();
        }
        let stats = db.vacuum().unwrap();
        assert_eq!(stats.versions_removed, 99);
        // The live row (and its index entry) survive and read correctly.
        let r = db.begin_read();
        assert_eq!(
            heartbeat::recency_of(&r, &s).unwrap(),
            Some(Timestamp::from_secs(100))
        );
        let hb = r.table_id(HEARTBEAT_TABLE).unwrap();
        assert_eq!(
            r.index_probe_in(hb, 0, &[Value::text("m1")])
                .unwrap()
                .unwrap()
                .len(),
            1
        );
        // A second vacuum finds nothing to do.
        drop(r);
        let stats = db.vacuum().unwrap();
        assert_eq!(stats.versions_removed, 0);
    }

    #[test]
    fn vacuum_respects_open_snapshots() {
        let db = Database::new();
        let tid = activity(&db);
        let slot = db
            .with_write(|w| w.insert(tid, act_row("m1", "idle", 1)))
            .unwrap();
        let old = db.begin_read(); // can still see the row after deletion
        db.with_write(|w| w.delete(tid, slot)).unwrap();
        let stats = db.vacuum().unwrap();
        assert_eq!(
            stats.versions_removed, 0,
            "version visible to an open snapshot must survive"
        );
        assert_eq!(old.scan(tid).unwrap().len(), 1);
        drop(old);
        let stats = db.vacuum().unwrap();
        assert_eq!(stats.versions_removed, 1);
        assert_eq!(db.begin_read().scan(tid).unwrap().len(), 0);
    }

    #[test]
    fn vacuum_drops_aborted_versions_and_blocks_on_open_txns() {
        let db = Database::new();
        let tid = activity(&db);
        let w = db.begin_write();
        w.insert(tid, act_row("m1", "idle", 1)).unwrap();
        // In-progress txn blocks vacuum.
        assert!(db.vacuum().is_err());
        w.abort();
        let stats = db.vacuum().unwrap();
        assert_eq!(stats.versions_removed, 1, "aborted insert reclaimed");
    }

    #[test]
    fn scan_slot_ranges_concatenate_to_full_scan() {
        let db = Database::new();
        let tid = activity(&db);
        db.with_write(|w| {
            for s in 0..25 {
                w.insert(tid, act_row(&format!("m{}", s % 3 + 1), "idle", s))?;
            }
            Ok(())
        })
        .unwrap();
        // Delete a few rows so some slots are invisible.
        let slots: Vec<_> = db.begin_read().scan_slots(tid).unwrap();
        db.with_write(|w| {
            w.delete(tid, slots[3].0)?;
            w.delete(tid, slots[17].0)
        })
        .unwrap();
        let r = db.begin_read();
        let total = r.version_slot_count(tid).unwrap();
        assert_eq!(total, 25);
        let mut pieces = Vec::new();
        for lo in (0..total + 7).step_by(7) {
            pieces.extend(r.scan_slot_range(tid, lo, lo + 7).unwrap());
        }
        assert_eq!(pieces, r.scan(tid).unwrap());
    }

    #[test]
    fn index_probe_chunks_match_flat_probe() {
        let db = Database::new();
        let tid = activity(&db);
        db.create_index("activity", "mach_id").unwrap();
        db.with_write(|w| {
            for s in 0..30 {
                w.insert(tid, act_row(&format!("m{}", s % 3 + 1), "idle", s))?;
            }
            Ok(())
        })
        .unwrap();
        let r = db.begin_read();
        let keys = [Value::text("m3"), Value::text("m1")];
        let chunks = r.index_probe_in_chunks(tid, 0, &keys, 4).unwrap().unwrap();
        assert!(chunks.iter().all(|c| c.len() <= 4 && !c.is_empty()));
        let mut rows = Vec::new();
        for chunk in &chunks {
            rows.extend(r.rows_for_slots(tid, chunk).unwrap());
        }
        assert_eq!(rows, r.index_probe_in(tid, 0, &keys).unwrap().unwrap());
        // Unindexed column reports no index, same as the flat probe.
        assert!(r.index_probe_in_chunks(tid, 1, &keys, 4).unwrap().is_none());
    }

    #[test]
    fn heartbeat_epoch_advances_on_upserts_only() {
        let db = Database::new();
        let tid = activity(&db);
        let e0 = db.heartbeat_epoch();
        db.with_write(|w| w.insert(tid, act_row("m1", "idle", 1)))
            .unwrap();
        assert_eq!(db.heartbeat_epoch(), e0, "plain insert leaves epoch");
        let m1 = SourceId::new("m1");
        db.with_write(|w| w.heartbeat(&m1, Timestamp::from_secs(5)))
            .unwrap();
        assert!(db.heartbeat_epoch() > e0);
        let e1 = db.heartbeat_epoch();
        db.with_write(|w| w.ingest(&m1, tid, act_row("m1", "busy", 9), Timestamp::from_secs(9)))
            .unwrap();
        assert!(db.heartbeat_epoch() > e1, "ingest heartbeats too");
        assert_eq!(db.begin_read().heartbeat_epoch(), db.heartbeat_epoch());
    }

    #[test]
    fn raw_heartbeat_table_dml_advances_epoch() {
        // SQL DML reaches the heartbeat table through plain
        // insert/update/delete, bypassing `WriteTxn::heartbeat`. Each
        // such write must still advance the epoch, or a prepared plan
        // cached against the old recency state would be served stale
        // (the coverage hole diagnostic TRAC019 certifies against).
        let db = Database::new();
        let hb = db.begin_read().table_id(HEARTBEAT_TABLE).unwrap();
        let hb_row = |secs: i64| {
            vec![
                Value::text("m9"),
                Value::Timestamp(Timestamp::from_secs(secs)),
            ]
        };
        let e0 = db.heartbeat_epoch();
        db.with_write(|w| w.insert(hb, hb_row(1))).unwrap();
        assert!(db.heartbeat_epoch() > e0, "raw insert must bump");
        let (slot, _) = db.begin_read().scan_slots(hb).unwrap().pop().unwrap();
        let e1 = db.heartbeat_epoch();
        db.with_write(|w| w.update(hb, slot, hb_row(2))).unwrap();
        assert!(db.heartbeat_epoch() > e1, "raw update must bump");
        let (slot, _) = db.begin_read().scan_slots(hb).unwrap().pop().unwrap();
        let e2 = db.heartbeat_epoch();
        db.with_write(|w| w.delete(hb, slot)).unwrap();
        assert!(db.heartbeat_epoch() > e2, "raw delete must bump");
    }

    #[test]
    fn write_write_conflict_surfaces() {
        let db = Database::new();
        let tid = activity(&db);
        let slot = db
            .with_write(|w| w.insert(tid, act_row("m1", "idle", 1)))
            .unwrap();
        let w1 = db.begin_write();
        let w2 = db.begin_write();
        w1.delete(tid, slot).unwrap();
        let err = w2.delete(tid, slot).unwrap_err();
        assert_eq!(err.kind(), "txn_aborted");
        w1.commit();
    }
}
