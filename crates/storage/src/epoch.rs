//! Heartbeat-epoch coverage: an auditable registry of mutation paths.
//!
//! The heartbeat epoch is the coarse freshness witness of the database:
//! a monotone counter that advances whenever recency-relevant state
//! (the `Heartbeat` table) changes. Report freshness itself is carried
//! by the typed change stream ([`crate::changelog`]) that maintained
//! reports fold, but the epoch remains the cheap observable — a single
//! load answers "has anything recency-relevant happened since?" — and
//! its value is only as strong as the *coverage* of the bump: every
//! mutation path that can change recency-relevant state must advance
//! it, or the counter silently under-reports the state it witnesses.
//!
//! This module makes the coverage claim checkable instead of folklore.
//! [`audit`] drives every mutation entry point of the storage crate
//! against a scratch database and reports, per path, whether the path
//! is recency-relevant and whether it actually bumped the epoch. The
//! `trac-analyze` concurrency pass (diagnostic `TRAC019`) consumes the
//! observations and flags any relevant-but-unbumped path.
//!
//! The module also hosts the *epoch yield hook*: an optional callback
//! invoked immediately before each bump so the deterministic
//! interleaving explorer (`trac-exec::schedule`) can treat the bump as
//! a schedule point without this crate depending on the executor.

use crate::db::Database;
use crate::heartbeat::HEARTBEAT_TABLE;
use crate::schema::{ColumnDef, TableSchema};
use crate::table::RowSlot;
use std::sync::OnceLock;
use trac_types::{ColumnDomain, DataType, Result, SourceId, Timestamp, TracError, Value};

/// Optional callback run right before every heartbeat-epoch bump.
static EPOCH_YIELD: OnceLock<fn()> = OnceLock::new();

/// Installs the process-wide epoch yield hook. The first installation
/// wins; later calls are ignored (the hook itself is expected to no-op
/// outside an active exploration, so a single installation is enough).
pub fn set_epoch_yield_hook(hook: fn()) {
    let _ = EPOCH_YIELD.set(hook);
}

/// Runs the installed epoch yield hook, if any. Called by the database
/// with no storage locks held, so the hook may block (the interleaving
/// explorer parks the thread here).
pub(crate) fn epoch_yield() {
    if let Some(hook) = EPOCH_YIELD.get() {
        hook();
    }
}

/// One audited mutation path: does it affect recency-relevant state,
/// and did exercising it advance the heartbeat epoch?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Stable name of the mutation path (used in diagnostics).
    pub name: &'static str,
    /// True when the path can change recency-relevant state (the
    /// heartbeat table), so the epoch freshness counter must witness
    /// it.
    pub affects_recency: bool,
    /// True when exercising the path advanced the epoch.
    pub bumped: bool,
}

impl Observation {
    /// True when this path violates freshness-counter coverage: it
    /// changes recency-relevant state without advancing the epoch.
    pub fn violates_coverage(&self) -> bool {
        self.affects_recency && !self.bumped
    }
}

fn probe(
    name: &'static str,
    affects_recency: bool,
    exercise: impl FnOnce(&Database) -> Result<()>,
) -> Result<Observation> {
    let db = Database::new();
    let before = db.heartbeat_epoch();
    exercise(&db)?;
    Ok(Observation {
        name,
        affects_recency,
        bumped: db.heartbeat_epoch() > before,
    })
}

fn scratch_user_table(db: &Database) -> Result<crate::catalog::TableId> {
    db.create_table(TableSchema::new(
        "epoch_audit_t",
        vec![
            ColumnDef::new("sid", DataType::Text).with_domain(ColumnDomain::Any(DataType::Text)),
            ColumnDef::new("v", DataType::Int),
        ],
        Some("sid"),
    )?)
}

fn heartbeat_row(source: &str, secs: i64) -> Vec<Value> {
    vec![
        Value::text(source),
        Value::Timestamp(Timestamp::from_secs(secs)),
    ]
}

fn visible_heartbeat_slot(db: &Database, source: &str) -> Result<RowSlot> {
    let r = db.begin_read();
    let hb = r.table_id(HEARTBEAT_TABLE)?;
    r.scan_slots(hb)?
        .into_iter()
        .find(|(_, row)| row[0] == Value::text(source))
        .map(|(slot, _)| slot)
        .ok_or_else(|| TracError::Storage(format!("no heartbeat row for {source}")))
}

/// Exercises every mutation entry point of this crate against scratch
/// databases and reports epoch coverage per path. The list is the
/// crate's mutation-path registry: a new mutation entry point must be
/// added here, and the `TRAC019` pass fails the build (via its corpus
/// test) when a recency-relevant path does not bump the epoch.
pub fn audit() -> Result<Vec<Observation>> {
    let mut out = Vec::new();
    out.push(probe("user-table insert", false, |db| {
        let tid = scratch_user_table(db)?;
        db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
        Ok(())
    })?);
    out.push(probe("user-table delete", false, |db| {
        let tid = scratch_user_table(db)?;
        let slot = db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
        db.with_write(|w| w.delete(tid, slot))?;
        Ok(())
    })?);
    out.push(probe("heartbeat-table insert (raw txn)", true, |db| {
        let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
        db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
        Ok(())
    })?);
    out.push(probe("heartbeat-table update (raw txn)", true, |db| {
        let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
        db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
        let slot = visible_heartbeat_slot(db, "m1")?;
        db.with_write(|w| w.update(hb, slot, heartbeat_row("m1", 20)))?;
        Ok(())
    })?);
    out.push(probe("heartbeat-table delete (raw txn)", true, |db| {
        let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
        db.with_write(|w| w.insert(hb, heartbeat_row("m1", 10)))?;
        let slot = visible_heartbeat_slot(db, "m1")?;
        db.with_write(|w| w.delete(hb, slot))?;
        Ok(())
    })?);
    out.push(probe("heartbeat upsert", true, |db| {
        db.with_write(|w| w.heartbeat(&SourceId::new("m1"), Timestamp::from_secs(10)))?;
        Ok(())
    })?);
    out.push(probe("ingest", true, |db| {
        let tid = scratch_user_table(db)?;
        db.with_write(|w| {
            w.ingest(
                &SourceId::new("m1"),
                tid,
                vec![Value::text("m1"), Value::Int(1)],
                Timestamp::from_secs(10),
            )
        })?;
        Ok(())
    })?);
    out.push(probe("vacuum", false, |db| {
        let tid = scratch_user_table(db)?;
        let slot = db.with_write(|w| w.insert(tid, vec![Value::text("m1"), Value::Int(1)]))?;
        db.with_write(|w| w.delete(tid, slot))?;
        db.vacuum()?;
        Ok(())
    })?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_finds_full_coverage() {
        let obs = audit().unwrap();
        assert_eq!(obs.len(), 8);
        for o in &obs {
            assert!(
                !o.violates_coverage(),
                "mutation path {:?} changes recency state without bumping the epoch",
                o.name
            );
        }
        // Relevance split is as declared: exactly the five heartbeat
        // paths are recency-relevant, and all of them bump.
        assert_eq!(obs.iter().filter(|o| o.affects_recency).count(), 5);
        assert!(obs.iter().filter(|o| o.affects_recency).all(|o| o.bumped));
    }

    #[test]
    fn non_relevant_paths_leave_the_epoch_alone() {
        let obs = audit().unwrap();
        for o in obs.iter().filter(|o| !o.affects_recency) {
            assert!(
                !o.bumped,
                "path {:?} is declared recency-irrelevant but bumped the epoch",
                o.name
            );
        }
    }
}
