//! Ordered secondary indexes.
//!
//! The paper's evaluation builds B-tree indexes on the data source columns
//! of `Heartbeat`, `Activity` and `Routing` (Section 5.2) — that is what
//! lets the Focused recency query probe only the few relevant sources
//! instead of scanning everything. We implement the moral equivalent with
//! a `BTreeMap<Value, Vec<RowSlot>>`: entries are added on insert and
//! never removed (versions stay in the heap); readers re-check MVCC
//! visibility and, when necessary, the indexed predicate.

use crate::table::RowSlot;
use std::collections::BTreeMap;
use std::ops::Bound;
use trac_types::Value;

/// An ordered index over one column of a table.
#[derive(Debug, Default)]
pub struct Index {
    /// Indexed column position in the base table.
    pub column: usize,
    map: BTreeMap<Value, Vec<RowSlot>>,
    entries: usize,
}

impl Index {
    /// Creates an empty index on `column`.
    pub fn new(column: usize) -> Index {
        Index {
            column,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// Adds an entry. NULL keys are not indexed (SQL predicates on the
    /// indexed column can never match NULL anyway).
    pub fn insert(&mut self, key: &Value, slot: RowSlot) {
        if key.is_null() {
            return;
        }
        self.map.entry(key.clone()).or_default().push(slot);
        self.entries += 1;
    }

    /// Number of (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Slots whose key equals `key`.
    pub fn probe_eq<'a>(&'a self, key: &Value) -> impl Iterator<Item = RowSlot> + 'a {
        self.map.get(key).into_iter().flatten().copied()
    }

    /// Slots whose key is in any of `keys` (an `IN` list probe).
    pub fn probe_in<'a>(&'a self, keys: &'a [Value]) -> impl Iterator<Item = RowSlot> + 'a {
        keys.iter().flat_map(move |k| self.probe_eq(k))
    }

    /// Slots whose key lies within the given bounds.
    pub fn probe_range<'a>(
        &'a self,
        lo: Bound<&'a Value>,
        hi: Bound<&'a Value>,
    ) -> impl Iterator<Item = RowSlot> + 'a {
        self.map
            .range::<Value, _>((lo, hi))
            .flat_map(|(_, slots)| slots.iter().copied())
    }

    /// All slots in key order: ascending keys when `desc` is false,
    /// descending keys when true, with each key's posting list always
    /// in insertion (slot) order. Because `Value`'s total order is the
    /// executor's ORDER BY comparator and posting lists preserve
    /// insertion order, this walk enumerates slots exactly as a stable
    /// sort of the base table on the indexed column would — ascending
    /// or descending — which is what the MIN/MAX and top-N index fast
    /// paths rely on. NULL keys are absent (never indexed).
    pub fn ordered_slots(&self, desc: bool) -> Box<dyn Iterator<Item = RowSlot> + '_> {
        if desc {
            Box::new(
                self.map
                    .iter()
                    .rev()
                    .flat_map(|(_, slots)| slots.iter().copied()),
            )
        } else {
            Box::new(self.map.values().flat_map(|slots| slots.iter().copied()))
        }
    }

    /// Range probe in morsel-sized chunks: like [`Index::probe_range`]
    /// but grouped into `Vec`s of at most `chunk` slots, produced
    /// lazily from the underlying B-tree cursor. Parallel `IndexLookup`
    /// uses this to hand out work units without first materializing the
    /// full posting list.
    pub fn probe_range_chunks<'a>(
        &'a self,
        lo: Bound<&'a Value>,
        hi: Bound<&'a Value>,
        chunk: usize,
    ) -> impl Iterator<Item = Vec<RowSlot>> + 'a {
        let chunk = chunk.max(1);
        let mut slots = self.probe_range(lo, hi).peekable();
        std::iter::from_fn(move || {
            slots.peek()?;
            Some(slots.by_ref().take(chunk).collect())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> Index {
        let mut i = Index::new(0);
        i.insert(&Value::text("m1"), RowSlot(0));
        i.insert(&Value::text("m2"), RowSlot(1));
        i.insert(&Value::text("m1"), RowSlot(2));
        i.insert(&Value::text("m3"), RowSlot(3));
        i.insert(&Value::Null, RowSlot(4)); // dropped
        i
    }

    #[test]
    fn eq_probe() {
        let i = idx();
        assert_eq!(i.len(), 4);
        assert_eq!(i.distinct_keys(), 3);
        let hits: Vec<_> = i.probe_eq(&Value::text("m1")).collect();
        assert_eq!(hits, vec![RowSlot(0), RowSlot(2)]);
        assert_eq!(i.probe_eq(&Value::text("zz")).count(), 0);
        assert_eq!(i.probe_eq(&Value::Null).count(), 0);
    }

    #[test]
    fn in_probe() {
        let i = idx();
        let keys = [Value::text("m2"), Value::text("m3"), Value::text("nope")];
        let hits: Vec<_> = i.probe_in(&keys).collect();
        assert_eq!(hits, vec![RowSlot(1), RowSlot(3)]);
    }

    #[test]
    fn range_probe() {
        let mut i = Index::new(0);
        for n in 0..10 {
            i.insert(&Value::Int(n), RowSlot(n as usize));
        }
        let lo = Value::Int(3);
        let hi = Value::Int(6);
        let hits: Vec<_> = i
            .probe_range(Bound::Included(&lo), Bound::Excluded(&hi))
            .collect();
        assert_eq!(hits, vec![RowSlot(3), RowSlot(4), RowSlot(5)]);
        let unbounded: Vec<_> = i
            .probe_range(Bound::Unbounded, Bound::Included(&Value::Int(1)))
            .collect();
        assert_eq!(unbounded, vec![RowSlot(0), RowSlot(1)]);
    }

    #[test]
    fn ordered_walk_matches_stable_sort() {
        let i = idx();
        let asc: Vec<_> = i.ordered_slots(false).collect();
        // m1's postings stay in insertion order within the key group.
        assert_eq!(asc, vec![RowSlot(0), RowSlot(2), RowSlot(1), RowSlot(3)]);
        let desc: Vec<_> = i.ordered_slots(true).collect();
        // Descending keys, but postings still forward — the stable
        // descending-sort tie order.
        assert_eq!(desc, vec![RowSlot(3), RowSlot(1), RowSlot(0), RowSlot(2)]);
    }

    #[test]
    fn range_probe_chunks() {
        let mut i = Index::new(0);
        for n in 0..10 {
            i.insert(&Value::Int(n), RowSlot(n as usize));
        }
        let chunks: Vec<_> = i
            .probe_range_chunks(Bound::Unbounded, Bound::Unbounded, 4)
            .collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (0..4).map(RowSlot).collect::<Vec<_>>());
        assert_eq!(chunks[1], (4..8).map(RowSlot).collect::<Vec<_>>());
        assert_eq!(chunks[2], (8..10).map(RowSlot).collect::<Vec<_>>());
        // Chunk order concatenates back to the flat probe order.
        let flat: Vec<_> = i.probe_range(Bound::Unbounded, Bound::Unbounded).collect();
        assert_eq!(chunks.concat(), flat);
        // A zero chunk size is clamped rather than looping forever.
        assert_eq!(
            i.probe_range_chunks(Bound::Unbounded, Bound::Unbounded, 0)
                .count(),
            10
        );
        // Empty ranges produce no chunks.
        let lo = Value::Int(50);
        assert_eq!(
            i.probe_range_chunks(Bound::Included(&lo), Bound::Unbounded, 4)
                .count(),
            0
        );
    }
}
