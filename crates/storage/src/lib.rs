//! Embedded MVCC storage engine.
//!
//! The paper's prototype runs inside PostgreSQL and leans on two of its
//! properties: every statement sees a **consistent snapshot** (so the user
//! query and the generated recency query observe the same database state),
//! and **B-tree indexes** on data source columns make recency queries
//! cheap. This crate reproduces that substrate natively:
//!
//! * [`schema`] — table schemas with a designated *data source column*
//!   and per-column [`trac_types::ColumnDomain`]s (Section 3.3).
//! * [`txn`] — transaction ids, statuses and snapshots (a simplified
//!   PostgreSQL-style MVCC visibility model).
//! * [`table`] — versioned heap tables.
//! * [`index`] — ordered secondary indexes (equality and range probes).
//! * [`catalog`] — table/index name resolution, session temp tables.
//! * [`heartbeat`] — the system `Heartbeat(sid, recency)` table and the
//!   ingestion discipline that keeps it monotone (Section 3.1).
//! * [`epoch`] — the heartbeat-epoch mutation-path registry auditing
//!   freshness-counter coverage (diagnostic `TRAC019`).
//! * [`changelog`] — the typed, sequenced change stream maintained
//!   reports fold, with its coverage audit (diagnostic `TRAC028`).
//! * [`lockorder`] — the declared lock-acquisition order and the
//!   instrumented acquisition graph (diagnostic `TRAC020`).
//! * [`db`] — the [`Database`] facade tying it all together.

#![warn(missing_docs)]

pub mod catalog;
pub mod changelog;
pub mod db;
pub mod epoch;
pub mod heartbeat;
pub mod index;
pub mod lockorder;
pub mod persist;
pub mod schema;
pub mod table;
pub mod txn;

pub use catalog::{Catalog, ColumnStats, IndexMeta, NdvSketch, TableId, TableStats};
pub use changelog::{
    ChangeData, ChangeEvent, ChangeLog, RescanRequired, StreamObservation,
    DEFAULT_CHANGELOG_CAPACITY,
};
pub use db::{Database, ReadTxn, VacuumStats, WriteTxn};
pub use epoch::{set_epoch_yield_hook, Observation};
pub use heartbeat::{HEARTBEAT_RECENCY_COL, HEARTBEAT_SID_COL, HEARTBEAT_TABLE};
pub use lockorder::{LockId, LockToken};
pub use persist::{load_snapshot, save_snapshot};
pub use schema::{ColumnDef, TableSchema};
pub use table::{Row, RowSlot, Table};
pub use txn::{Snapshot, SnapshotBasis, TxnId, TxnManager, TxnStatus};
