//! Declared lock-acquisition order and an instrumented acquisition graph.
//!
//! The storage and execution layers take a small, fixed set of locks.
//! Deadlock freedom rests on all code paths acquiring them consistently
//! with one declared partial order:
//!
//! | rank | lock        | guards                                         |
//! |------|-------------|------------------------------------------------|
//! | 0    | `PlanCache` | the session's prepared-plan cache              |
//! | 1    | `DbData`    | the database's table/catalog `RwLock`          |
//! | 2    | `TxnStamped`| a write transaction's stamped-version list     |
//! | 3    | `MorselSlot`| a parallel worker's per-morsel result slot     |
//! | 4    | `ChangeLog` | the typed change-stream ring                   |
//!
//! An acquisition of lock `b` while holding lock `a` is legal iff
//! `rank(a) < rank(b)`. The order is *checked*, not assumed: when
//! tracking is enabled, [`acquire`] records every (held, acquired) pair
//! into a process-wide edge set, and the `trac-analyze` concurrency
//! pass (diagnostic `TRAC020`) verifies every observed edge against the
//! declared order after driving representative workloads.
//!
//! Instrumented sites are the *nesting-relevant* ones: guard
//! acquisitions that can be held across another acquisition (write
//! paths, the stamped list, plan-cache access, morsel slots).
//! Straight-line read probes that take and release `DbData` inside one
//! expression are left uninstrumented — the recorded graph is an
//! under-approximation of all acquisitions but covers every site that
//! can participate in a cycle today.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The locks participating in the declared order. Variant order IS the
/// declared acquisition order (derive `Ord` supplies the ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockId {
    /// Session prepared-plan cache (`trac-core`).
    PlanCache,
    /// Database table/catalog data lock.
    DbData,
    /// Write transaction's stamped-version list.
    TxnStamped,
    /// Parallel worker per-morsel result slot (`trac-exec`).
    MorselSlot,
    /// The typed change-stream ring ([`crate::changelog::ChangeLog`]).
    /// Ranked last: publication runs with no storage lock held, and
    /// consumers drain holding at most the plan cache, so every edge
    /// into it is downhill.
    ChangeLog,
}

impl LockId {
    /// Position in the declared acquisition order (0 acquired first).
    pub fn rank(self) -> usize {
        self as usize
    }

    /// Stable display name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LockId::PlanCache => "PlanCache",
            LockId::DbData => "DbData",
            LockId::TxnStamped => "TxnStamped",
            LockId::MorselSlot => "MorselSlot",
            LockId::ChangeLog => "ChangeLog",
        }
    }
}

/// True when an acquisition of `acquired` while holding `held` is
/// consistent with the declared order.
pub fn edge_is_legal(held: LockId, acquired: LockId) -> bool {
    held.rank() < acquired.rank()
}

static TRACKING: AtomicBool = AtomicBool::new(false);
static EDGES: Mutex<BTreeSet<(LockId, LockId)>> = Mutex::new(BTreeSet::new());

/// The edge set survives panics in instrumented code (a poisoned mutex
/// only means a recorder died mid-insert; the set itself stays usable).
fn edges() -> std::sync::MutexGuard<'static, BTreeSet<(LockId, LockId)>> {
    EDGES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static HELD: RefCell<Vec<LockId>> = const { RefCell::new(Vec::new()) };
}

/// Starts recording the acquisition graph (clearing any prior edges).
pub fn enable_tracking() {
    edges().clear();
    TRACKING.store(true, Ordering::SeqCst);
}

/// Stops recording and drains the observed (held, acquired) edge set.
pub fn take_edges() -> Vec<(LockId, LockId)> {
    TRACKING.store(false, Ordering::SeqCst);
    std::mem::take(&mut *edges()).into_iter().collect()
}

/// Declares an acquisition of `id` on this thread. Create the token
/// immediately before taking the guard and keep it in scope at least as
/// long as the guard; dropping it declares the release. When tracking
/// is off (the default) this is two atomic loads and otherwise free.
pub fn acquire(id: LockId) -> LockToken {
    if !TRACKING.load(Ordering::Relaxed) {
        return LockToken {
            id,
            recorded: false,
        };
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if !held.is_empty() {
            let mut edges = edges();
            for &h in held.iter() {
                edges.insert((h, id));
            }
        }
        held.push(id);
    });
    LockToken { id, recorded: true }
}

/// RAII handle pairing one recorded acquisition with its release.
#[derive(Debug)]
pub struct LockToken {
    id: LockId,
    recorded: bool,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        if !self.recorded {
            return;
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == self.id) {
                held.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_variant_order() {
        assert!(LockId::PlanCache.rank() < LockId::DbData.rank());
        assert!(LockId::DbData.rank() < LockId::TxnStamped.rank());
        assert!(LockId::TxnStamped.rank() < LockId::MorselSlot.rank());
        assert!(LockId::MorselSlot.rank() < LockId::ChangeLog.rank());
        assert!(edge_is_legal(LockId::DbData, LockId::TxnStamped));
        assert!(!edge_is_legal(LockId::TxnStamped, LockId::DbData));
        assert!(!edge_is_legal(LockId::DbData, LockId::DbData));
    }

    #[test]
    fn tracking_records_nested_acquisitions_only() {
        enable_tracking();
        {
            let _a = acquire(LockId::DbData);
            let _b = acquire(LockId::TxnStamped);
        }
        {
            // Non-nested acquisition adds no edge.
            let _c = acquire(LockId::PlanCache);
        }
        let edges = take_edges();
        assert!(edges.contains(&(LockId::DbData, LockId::TxnStamped)));
        assert!(edges.iter().all(|&(a, _)| a != LockId::PlanCache));
        // Tokens popped their held entries: a fresh session is clean.
        enable_tracking();
        let _d = acquire(LockId::MorselSlot);
        drop(_d);
        assert!(take_edges().is_empty());
    }
}
