//! Snapshot persistence: save the committed state to a file, load it back.
//!
//! The paper's deployments hold operational/historical grid state that
//! should survive a monitor restart. This module serializes a consistent
//! snapshot — schemas (with domains and CHECK constraint sources), index
//! definitions, and every visible row — in a simple length-prefixed
//! binary format (`TRAC` magic + format version). Version history is
//! deliberately *not* persisted: a fresh load is equivalent to a vacuumed
//! database at the snapshot point.
//!
//! CHECK constraints live behind the [`trac_types::RowCheck`] trait whose
//! concrete type belongs to a higher layer, so loading takes a *check
//! binder* callback that re-binds each `(name, sql)` pair against the
//! loaded schema (the `trac` umbrella crate wires this to the expression
//! layer's `parse_check`).

use crate::db::Database;
use crate::schema::{ColumnDef, TableSchema};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;
use trac_types::{ColumnDomain, DataType, Result, RowCheckRef, Timestamp, TracError, Value};

const MAGIC: &[u8; 4] = b"TRAC";
const FORMAT_VERSION: u16 = 1;

/// Re-binds a persisted CHECK constraint `(name, sql)` against its table.
pub type CheckBinder<'a> = &'a dyn Fn(&TableSchema, &str, &str) -> Result<RowCheckRef>;

/// Serializes the database's currently-committed state to `path`.
///
/// Temp tables are skipped (they are session-scoped by definition). The
/// snapshot is taken once, so concurrent writers don't tear it.
pub fn save_snapshot(db: &Database, path: &Path) -> Result<()> {
    let txn = db.begin_read();
    let mut buf = BytesMut::with_capacity(64 * 1024);
    buf.put_slice(MAGIC);
    buf.put_u16(FORMAT_VERSION);
    let names: Vec<String> = txn
        .table_names()
        .into_iter()
        .filter(|n| !txn.is_temp_table(n))
        .collect();
    buf.put_u32(names.len() as u32);
    for name in &names {
        let tid = txn.table_id(name)?;
        let schema = txn.schema(tid)?;
        put_str(&mut buf, &schema.name);
        buf.put_u16(schema.columns.len() as u16);
        for c in &schema.columns {
            put_str(&mut buf, &c.name);
            buf.put_u8(type_tag(c.ty));
            buf.put_u8(c.nullable as u8);
            put_domain(&mut buf, &c.domain);
        }
        match schema.source_column {
            Some(i) => {
                buf.put_u8(1);
                buf.put_u16(i as u16);
            }
            None => buf.put_u8(0),
        }
        buf.put_u16(schema.checks.len() as u16);
        for check in &schema.checks {
            put_str(&mut buf, check.name());
            put_str(&mut buf, &check.display_sql());
        }
        let index_cols = txn.index_columns(tid);
        buf.put_u16(index_cols.len() as u16);
        for c in &index_cols {
            buf.put_u16(*c as u16);
        }
        let rows = txn.scan(tid)?;
        buf.put_u64(rows.len() as u64);
        for row in rows {
            for v in row.iter() {
                put_value(&mut buf, v);
            }
        }
    }
    std::fs::write(path, &buf)
        .map_err(|e| TracError::Storage(format!("cannot write snapshot {}: {e}", path.display())))
}

/// Loads a snapshot into a fresh [`Database`]. `bind_check` rebuilds each
/// persisted CHECK constraint; pass a closure erroring out to refuse
/// databases with constraints.
pub fn load_snapshot(path: &Path, bind_check: CheckBinder<'_>) -> Result<Database> {
    let data = std::fs::read(path)
        .map_err(|e| TracError::Storage(format!("cannot read snapshot {}: {e}", path.display())))?;
    let mut buf = Bytes::from(data);
    let corrupt = |what: &str| TracError::Storage(format!("corrupt snapshot: {what}"));
    if buf.remaining() < 6 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u16();
    if version != FORMAT_VERSION {
        return Err(TracError::Storage(format!(
            "unsupported snapshot format version {version}"
        )));
    }
    let db = Database::new();
    let n_tables = checked_u32(&mut buf, "table count")?;
    let mut pending_indexes: Vec<(String, String)> = Vec::new();
    let txn = db.begin_write();
    for _ in 0..n_tables {
        let name = get_str(&mut buf)?;
        let n_cols = checked_u16(&mut buf, "column count")?;
        let mut columns = Vec::with_capacity(n_cols as usize);
        for _ in 0..n_cols {
            let col_name = get_str(&mut buf)?;
            let ty = type_from_tag(get_u8(&mut buf)?).ok_or_else(|| corrupt("bad type tag"))?;
            let nullable = get_u8(&mut buf)? != 0;
            let domain = get_domain(&mut buf)?;
            let mut def = ColumnDef::new(col_name, ty).with_domain(domain);
            if nullable {
                def = def.nullable();
            }
            columns.push(def);
        }
        let source_column = if get_u8(&mut buf)? == 1 {
            Some(checked_u16(&mut buf, "source column")? as usize)
        } else {
            None
        };
        let source_name =
            source_column.map(|i| columns.get(i).map(|c| c.name.clone()).unwrap_or_default());
        let mut schema = TableSchema::new(name.clone(), columns, source_name.as_deref())?;
        let n_checks = checked_u16(&mut buf, "check count")?;
        for _ in 0..n_checks {
            let check_name = get_str(&mut buf)?;
            let sql = get_str(&mut buf)?;
            let check = bind_check(&schema, &check_name, &sql)?;
            schema = schema.with_check(check);
        }
        let arity = schema.arity();
        let n_indexes = checked_u16(&mut buf, "index count")?;
        for _ in 0..n_indexes {
            let col = checked_u16(&mut buf, "index column")? as usize;
            let col_name = schema
                .columns
                .get(col)
                .ok_or_else(|| corrupt("index column out of range"))?
                .name
                .clone();
            pending_indexes.push((name.clone(), col_name));
        }
        // The bootstrap heartbeat table already exists; replace it so the
        // persisted domain and contents win.
        if db.begin_read().table_id(&name).is_ok() {
            db.drop_table(&name)?;
        }
        let tid = db.create_table(schema)?;
        let n_rows = buf_get_u64(&mut buf)?;
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(get_value(&mut buf)?);
            }
            txn.insert(tid, row)?;
        }
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    txn.commit();
    for (table, column) in pending_indexes {
        db.create_index(&table, &column)?;
    }
    Ok(db)
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Timestamp => 4,
    }
}

fn type_from_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Timestamp,
        _ => return None,
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = checked_u32(buf, "string length")? as usize;
    if buf.remaining() < len {
        return Err(TracError::Storage(
            "corrupt snapshot: truncated string".into(),
        ));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec())
        .map_err(|_| TracError::Storage("corrupt snapshot: invalid utf-8".into()))
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if !buf.has_remaining() {
        return Err(TracError::Storage("corrupt snapshot: truncated".into()));
    }
    Ok(buf.get_u8())
}

fn checked_u16(buf: &mut Bytes, what: &str) -> Result<u16> {
    if buf.remaining() < 2 {
        return Err(TracError::Storage(format!(
            "corrupt snapshot: truncated {what}"
        )));
    }
    Ok(buf.get_u16())
}

fn checked_u32(buf: &mut Bytes, what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(TracError::Storage(format!(
            "corrupt snapshot: truncated {what}"
        )));
    }
    Ok(buf.get_u32())
}

fn buf_get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(TracError::Storage("corrupt snapshot: truncated u64".into()));
    }
    Ok(buf.get_u64())
}

fn put_domain(buf: &mut BytesMut, d: &ColumnDomain) {
    match d {
        ColumnDomain::Any(ty) => {
            buf.put_u8(0);
            buf.put_u8(type_tag(*ty));
        }
        ColumnDomain::IntRange { lo, hi } => {
            buf.put_u8(1);
            buf.put_i64(*lo);
            buf.put_i64(*hi);
        }
        ColumnDomain::TextSet(set) => {
            buf.put_u8(2);
            buf.put_u32(set.len() as u32);
            for s in set.iter() {
                put_str(buf, s);
            }
        }
        ColumnDomain::TimestampRange { lo, hi } => {
            buf.put_u8(3);
            buf.put_i64(lo.micros());
            buf.put_i64(hi.micros());
        }
        ColumnDomain::Bools => buf.put_u8(4),
    }
}

fn get_domain(buf: &mut Bytes) -> Result<ColumnDomain> {
    Ok(match get_u8(buf)? {
        0 => ColumnDomain::Any(
            type_from_tag(get_u8(buf)?)
                .ok_or_else(|| TracError::Storage("corrupt snapshot: bad domain type".into()))?,
        ),
        1 => ColumnDomain::IntRange {
            lo: get_i64(buf)?,
            hi: get_i64(buf)?,
        },
        2 => {
            let n = checked_u32(buf, "text set size")?;
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(get_str(buf)?);
            }
            ColumnDomain::text_set(items)
        }
        3 => ColumnDomain::TimestampRange {
            lo: Timestamp::from_micros(get_i64(buf)?),
            hi: Timestamp::from_micros(get_i64(buf)?),
        },
        4 => ColumnDomain::Bools,
        _ => {
            return Err(TracError::Storage(
                "corrupt snapshot: bad domain tag".into(),
            ))
        }
    })
}

fn get_i64(buf: &mut Bytes) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(TracError::Storage("corrupt snapshot: truncated i64".into()));
    }
    Ok(buf.get_i64())
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Timestamp(t) => {
            buf.put_u8(5);
            buf.put_i64(t.micros());
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    Ok(match get_u8(buf)? {
        0 => Value::Null,
        1 => Value::Bool(get_u8(buf)? != 0),
        2 => Value::Int(get_i64(buf)?),
        3 => {
            if buf.remaining() < 8 {
                return Err(TracError::Storage("corrupt snapshot: truncated f64".into()));
            }
            Value::Float(buf.get_f64())
        }
        4 => Value::Text(get_str(buf)?),
        5 => Value::Timestamp(Timestamp::from_micros(get_i64(buf)?)),
        _ => return Err(TracError::Storage("corrupt snapshot: bad value tag".into())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trac_types::SourceId;

    fn no_checks(_: &TableSchema, name: &str, _: &str) -> Result<RowCheckRef> {
        Err(TracError::Storage(format!(
            "test binder refuses check {name}"
        )))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("trac_persist_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = Database::new();
        let schema = TableSchema::new(
            "activity",
            vec![
                ColumnDef::new("mach_id", DataType::Text)
                    .with_domain(ColumnDomain::text_set(["m1", "m2"])),
                ColumnDef::new("value", DataType::Text).nullable(),
                ColumnDef::new("n", DataType::Int)
                    .with_domain(ColumnDomain::IntRange { lo: 0, hi: 9 })
                    .nullable(),
                ColumnDef::new("t", DataType::Timestamp).nullable(),
                ColumnDef::new("f", DataType::Float).nullable(),
                ColumnDef::new("b", DataType::Bool).nullable(),
            ],
            Some("mach_id"),
        )
        .unwrap();
        db.create_table(schema).unwrap();
        db.create_index("activity", "mach_id").unwrap();
        let tid = db.begin_read().table_id("activity").unwrap();
        db.with_write(|w| {
            w.heartbeat(&SourceId::new("m1"), Timestamp::from_secs(50))?;
            w.insert(
                tid,
                vec![
                    Value::text("m1"),
                    Value::text("idle"),
                    Value::Int(3),
                    Value::Timestamp(Timestamp::from_secs(99)),
                    Value::Float(2.5),
                    Value::Bool(true),
                ],
            )?;
            w.insert(
                tid,
                vec![
                    Value::text("m2"),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ],
            )
        })
        .unwrap();
        // A row deleted before the save must not reappear.
        let (slot, _) = db
            .begin_read()
            .scan_slots(tid)
            .unwrap()
            .into_iter()
            .find(|(_, r)| r[0] == Value::text("m2"))
            .unwrap();
        db.with_write(|w| w.delete(tid, slot)).unwrap();

        let path = tmp("roundtrip");
        save_snapshot(&db, &path).unwrap();
        let loaded = load_snapshot(&path, &no_checks).unwrap();
        std::fs::remove_file(&path).ok();

        let txn = loaded.begin_read();
        let tid2 = txn.table_id("activity").unwrap();
        let schema2 = txn.schema(tid2).unwrap();
        assert_eq!(schema2.source_column, Some(0));
        assert_eq!(
            schema2.columns[0].domain,
            ColumnDomain::text_set(["m1", "m2"])
        );
        assert!(txn.has_index(tid2, 0), "index definitions persist");
        let rows = txn.scan(tid2).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::text("m1"));
        assert_eq!(rows[0][4], Value::Float(2.5));
        // The heartbeat table came along too.
        assert_eq!(
            crate::heartbeat::recency_of(&txn, &SourceId::new("m1")).unwrap(),
            Some(Timestamp::from_secs(50))
        );
    }

    #[test]
    fn temp_tables_are_not_persisted() {
        let db = Database::new();
        let session = db.new_session_id();
        let schema =
            TableSchema::new("scratch", vec![ColumnDef::new("x", DataType::Int)], None).unwrap();
        db.create_temp_table(schema, session).unwrap();
        let path = tmp("temps");
        save_snapshot(&db, &path).unwrap();
        let loaded = load_snapshot(&path, &no_checks).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.begin_read().table_id("scratch").is_err());
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        let err = load_snapshot(&path, &no_checks).err().expect("must fail");
        assert!(err.message().contains("bad magic"), "{err}");
        std::fs::write(&path, b"TRAC\x00\x63").unwrap(); // version 99
        let err = load_snapshot(&path, &no_checks).err().expect("must fail");
        assert!(err.message().contains("version"), "{err}");
        // Truncated after a valid header.
        std::fs::write(&path, b"TRAC\x00\x01\x00\x00\x00\x05").unwrap();
        assert!(load_snapshot(&path, &no_checks).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_excludes_uncommitted_writes() {
        let db = Database::new();
        let txn = db.begin_write();
        txn.heartbeat(&SourceId::new("ghost"), Timestamp::from_secs(1))
            .unwrap();
        let path = tmp("uncommitted");
        save_snapshot(&db, &path).unwrap();
        txn.abort();
        let loaded = load_snapshot(&path, &no_checks).unwrap();
        std::fs::remove_file(&path).ok();
        let r = loaded.begin_read();
        assert_eq!(
            crate::heartbeat::recency_of(&r, &SourceId::new("ghost")).unwrap(),
            None
        );
    }
}
