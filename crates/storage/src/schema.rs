//! Table schemas with a designated data source column.
//!
//! Section 3.3 of the paper: every monitored relation carries a column
//! identifying the data source of each tuple, used as a foreign key into
//! the `Heartbeat` table. Only updates from source `s` may insert or
//! change tuples whose source column holds `s` — [`crate::db::WriteTxn`]
//! enforces that discipline for ingestion paths.

use trac_types::{ColumnDomain, DataType, Result, RowCheckRef, TracError, Value};

/// Definition of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name (matched case-insensitively by the resolver).
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// Value domain. Defaults to the full type domain; the evaluation
    /// schema gives every column a finite domain so the brute-force
    /// relevance oracle can enumerate potential tuples.
    pub domain: ColumnDomain,
    /// Whether NULLs may be stored.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column with the full type domain.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            domain: ColumnDomain::Any(ty),
            nullable: false,
        }
    }

    /// Replaces the domain (builder style).
    pub fn with_domain(mut self, domain: ColumnDomain) -> ColumnDef {
        debug_assert_eq!(domain.data_type(), self.ty, "domain type mismatch");
        self.domain = domain;
        self
    }

    /// Marks the column nullable (builder style).
    pub fn nullable(mut self) -> ColumnDef {
        self.nullable = true;
        self
    }
}

/// Schema of a relation.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Relation name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index (into `columns`) of the data source column, if the relation
    /// is fed by monitored sources. System/temp tables may have none.
    pub source_column: Option<usize>,
    /// Row-level CHECK constraints, enforced on every insert/update and
    /// exploited by the relevance analyzer (paper Section 3.4's
    /// constraint-aware precision, its stated future work).
    pub checks: Vec<RowCheckRef>,
}

impl TableSchema {
    /// Builds a schema; `source_column` names the data source column.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        source_column: Option<&str>,
    ) -> Result<TableSchema> {
        let name = name.into();
        if columns.is_empty() {
            return Err(TracError::Catalog(format!("table {name} has no columns")));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(TracError::Catalog(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        let source_column = match source_column {
            None => None,
            Some(sc) => {
                let idx = columns
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(sc))
                    .ok_or_else(|| {
                        TracError::Catalog(format!("source column {sc} not found in table {name}"))
                    })?;
                if columns[idx].nullable {
                    return Err(TracError::Catalog(format!(
                        "source column {sc} of {name} must be non-nullable"
                    )));
                }
                Some(idx)
            }
        };
        Ok(TableSchema {
            name,
            columns,
            source_column,
            checks: Vec::new(),
        })
    }

    /// Attaches a CHECK constraint (builder style).
    pub fn with_check(mut self, check: RowCheckRef) -> TableSchema {
        self.checks.push(check);
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Finds a column index by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The column definition at `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// True if `idx` is the data source column.
    pub fn is_source_column(&self, idx: usize) -> bool {
        self.source_column == Some(idx)
    }

    /// Name of the data source column, if any.
    pub fn source_column_name(&self) -> Option<&str> {
        self.source_column.map(|i| self.columns[i].name.as_str())
    }

    /// Type-checks, coerces, and CHECK-validates a row against this
    /// schema.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(TracError::Type(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        let row: Vec<Value> = row
            .into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if v.is_null() && !c.nullable {
                    return Err(TracError::Constraint(format!(
                        "column {}.{} is not nullable",
                        self.name, c.name
                    )));
                }
                v.coerce_to(c.ty).map_err(|e| {
                    TracError::Type(format!("column {}.{}: {}", self.name, c.name, e.message()))
                })
            })
            .collect::<Result<_>>()?;
        for check in &self.checks {
            if !check.check(&row)? {
                return Err(TracError::Constraint(format!(
                    "row violates CHECK {} on {} ({})",
                    check.name(),
                    self.name,
                    check.display_sql()
                )));
            }
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity_schema() -> TableSchema {
        TableSchema::new(
            "activity",
            vec![
                ColumnDef::new("mach_id", DataType::Text),
                ColumnDef::new("value", DataType::Text)
                    .with_domain(ColumnDomain::text_set(["idle", "busy"])),
                ColumnDef::new("event_time", DataType::Timestamp),
            ],
            Some("mach_id"),
        )
        .unwrap()
    }

    #[test]
    fn source_column_resolution() {
        let s = activity_schema();
        assert_eq!(s.source_column, Some(0));
        assert!(s.is_source_column(0));
        assert!(!s.is_source_column(1));
        assert_eq!(s.source_column_name(), Some("mach_id"));
        assert_eq!(s.column_index("VALUE"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn rejects_bad_schemas() {
        assert!(TableSchema::new("t", vec![], None).is_err());
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("A", DataType::Text),
            ],
            None
        )
        .is_err());
        assert!(
            TableSchema::new("t", vec![ColumnDef::new("a", DataType::Int)], Some("b")).is_err()
        );
        // Nullable source column is rejected.
        assert!(TableSchema::new(
            "t",
            vec![ColumnDef::new("s", DataType::Text).nullable()],
            Some("s")
        )
        .is_err());
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = activity_schema();
        let row = s
            .check_row(vec![
                Value::text("m1"),
                Value::text("idle"),
                Value::text("2006-03-15 14:20:05"),
            ])
            .unwrap();
        assert!(matches!(row[2], Value::Timestamp(_)));
        assert!(s.check_row(vec![Value::text("m1")]).is_err()); // arity
        assert!(s
            .check_row(vec![Value::Null, Value::text("idle"), Value::Int(0)])
            .is_err()); // null in non-nullable + type error
    }
}
