//! Versioned heap tables.
//!
//! A table is an append-only vector of row versions. Updates write a new
//! version and stamp `xmax` on the old one; deletes stamp `xmax` only.
//! Visibility is decided per [`crate::txn::Snapshot`]. Rows are shared as
//! `Arc<[Value]>` so scans hand out cheap clones.

use crate::schema::TableSchema;
use crate::txn::{Snapshot, TxnId};
use std::sync::Arc;
use trac_types::{Result, TracError, Value};

/// A shared, immutable row payload.
pub type Row = Arc<[Value]>;

/// Physical position of a row version within a table's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowSlot(pub usize);

/// One version of a row.
#[derive(Debug, Clone)]
pub struct RowVersion {
    /// The column values.
    pub values: Row,
    /// Creating transaction.
    pub xmin: TxnId,
    /// Deleting/superseding transaction, if any.
    pub xmax: Option<TxnId>,
}

/// A heap table: schema + version vector.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    versions: Vec<RowVersion>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            versions: Vec::new(),
        }
    }

    /// Total number of row versions (including dead ones).
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Appends a new row version created by `xmin`; the row must already
    /// be schema-checked. Returns its slot.
    pub fn append(&mut self, values: Row, xmin: TxnId) -> RowSlot {
        let slot = RowSlot(self.versions.len());
        self.versions.push(RowVersion {
            values,
            xmin,
            xmax: None,
        });
        slot
    }

    /// The version stored at `slot`.
    pub fn version(&self, slot: RowSlot) -> Option<&RowVersion> {
        self.versions.get(slot.0)
    }

    /// Marks the version at `slot` deleted by `xmax`.
    ///
    /// Fails (write-write conflict) if another transaction already stamped
    /// a non-aborted `xmax` there. The caller passes `xmax_is_live` to
    /// decide whether an existing stamp still counts (i.e. belongs to a
    /// transaction that is in progress or committed).
    pub fn delete_version(
        &mut self,
        slot: RowSlot,
        xmax: TxnId,
        xmax_is_live: impl Fn(TxnId) -> bool,
    ) -> Result<()> {
        let v = self
            .versions
            .get_mut(slot.0)
            .ok_or_else(|| TracError::Storage(format!("no slot {slot:?}")))?;
        match v.xmax {
            Some(existing) if existing != xmax && xmax_is_live(existing) => {
                Err(TracError::TxnAborted(format!(
                    "write-write conflict on {}.{:?}: already written by {existing}",
                    self.schema.name, slot
                )))
            }
            _ => {
                v.xmax = Some(xmax);
                Ok(())
            }
        }
    }

    /// Clears an `xmax` stamp set by an aborting transaction.
    pub fn unstamp(&mut self, slot: RowSlot, xmax: TxnId) {
        if let Some(v) = self.versions.get_mut(slot.0) {
            if v.xmax == Some(xmax) {
                v.xmax = None;
            }
        }
    }

    /// Iterates `(slot, row)` over versions visible to `snap` for reader
    /// `own`.
    pub fn scan_visible<'a>(
        &'a self,
        snap: &'a Snapshot,
        own: Option<TxnId>,
    ) -> impl Iterator<Item = (RowSlot, Row)> + 'a {
        self.versions
            .iter()
            .enumerate()
            .filter(move |(_, v)| snap.sees_version(own, v.xmin, v.xmax))
            .map(|(i, v)| (RowSlot(i), Arc::clone(&v.values)))
    }

    /// Drops every version for which `is_dead` returns true, compacting
    /// the heap. Returns the number removed. Slots are renumbered — the
    /// caller must rebuild indexes and must guarantee no outstanding
    /// [`RowSlot`] references (vacuum's job).
    pub fn compact(&mut self, is_dead: impl Fn(&RowVersion) -> bool) -> usize {
        let before = self.versions.len();
        self.versions.retain(|v| !is_dead(v));
        before - self.versions.len()
    }

    /// Iterates all physical versions (for index rebuilds).
    pub fn all_versions(&self) -> impl Iterator<Item = (RowSlot, &RowVersion)> {
        self.versions
            .iter()
            .enumerate()
            .map(|(i, v)| (RowSlot(i), v))
    }

    /// Visibility check + fetch for a single slot.
    pub fn visible_at(&self, slot: RowSlot, snap: &Snapshot, own: Option<TxnId>) -> Option<Row> {
        let v = self.versions.get(slot.0)?;
        snap.sees_version(own, v.xmin, v.xmax)
            .then(|| Arc::clone(&v.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::txn::TxnManager;
    use trac_types::DataType;

    fn tbl() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("sid", DataType::Text),
                    ColumnDef::new("v", DataType::Int),
                ],
                Some("sid"),
            )
            .unwrap(),
        )
    }

    fn row(s: &str, v: i64) -> Row {
        Arc::from(vec![Value::text(s), Value::Int(v)].into_boxed_slice())
    }

    #[test]
    fn append_scan_delete_cycle() {
        let m = TxnManager::new();
        let mut t = tbl();
        let t1 = m.begin();
        let s0 = t.append(row("m1", 1), t1);
        t.append(row("m2", 2), t1);
        m.commit(t1);

        let snap = m.snapshot();
        assert_eq!(t.scan_visible(&snap, None).count(), 2);

        let t2 = m.begin();
        t.delete_version(s0, t2, |x| m.status(x) != crate::txn::TxnStatus::Aborted)
            .unwrap();
        // Old snapshot still sees both rows; t2 sees one.
        assert_eq!(t.scan_visible(&snap, None).count(), 2);
        assert_eq!(t.scan_visible(&snap, Some(t2)).count(), 1);
        m.commit(t2);
        let snap2 = m.snapshot();
        assert_eq!(t.scan_visible(&snap2, None).count(), 1);
        assert_eq!(t.visible_at(s0, &snap2, None), None);
        assert_eq!(t.visible_at(s0, &snap, None), Some(row("m1", 1)));
    }

    #[test]
    fn write_write_conflict_detected() {
        let m = TxnManager::new();
        let mut t = tbl();
        let t1 = m.begin();
        let slot = t.append(row("m1", 1), t1);
        m.commit(t1);

        let t2 = m.begin();
        let t3 = m.begin();
        let live = |x: TxnId| m.status(x) != crate::txn::TxnStatus::Aborted;
        t.delete_version(slot, t2, live).unwrap();
        let err = t.delete_version(slot, t3, live).unwrap_err();
        assert_eq!(err.kind(), "txn_aborted");
        // If t2 aborts and unstamps, t3 may proceed.
        m.abort(t2);
        t.unstamp(slot, t2);
        t.delete_version(slot, t3, |x| m.status(x) != crate::txn::TxnStatus::Aborted)
            .unwrap();
    }

    #[test]
    fn uncommitted_insert_invisible_to_others() {
        let m = TxnManager::new();
        let mut t = tbl();
        let t1 = m.begin();
        t.append(row("m1", 1), t1);
        let snap = m.snapshot();
        assert_eq!(t.scan_visible(&snap, None).count(), 0);
        assert_eq!(t.scan_visible(&snap, Some(t1)).count(), 1);
    }
}
