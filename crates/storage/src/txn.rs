//! Transactions, statuses and snapshots.
//!
//! A simplified PostgreSQL-style MVCC model. Transaction ids are allocated
//! sequentially; a [`Snapshot`] captures the id horizon and the set of
//! transactions in flight at snapshot time. A row version created by `x`
//! is visible to a snapshot iff `x` committed before the snapshot was
//! taken, and its deleting transaction (if any) did not.
//!
//! This is what gives the TRAC session its first guiding requirement
//! (Section 3.2): the user query and the generated recency query run
//! against the *same* [`Snapshot`], so the reported recency information is
//! transactionally consistent with the query result.

use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// A transaction identifier. Ids are allocated densely from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Started, not yet finished.
    InProgress,
    /// Committed; its effects are durable.
    Committed,
    /// Aborted; its effects must never be observed.
    Aborted,
}

/// Allocates transaction ids and tracks their status, plus the registry
/// of outstanding snapshots (used by vacuum to find a safe horizon).
#[derive(Debug, Default)]
pub struct TxnManager {
    inner: RwLock<TxnTable>,
    snapshots: RwLock<HashMap<u64, SnapshotInfo>>,
    next_snapshot_serial: AtomicU64,
}

#[derive(Debug, Default)]
struct TxnTable {
    /// `status[i]` is the status of `TxnId(i + 1)`.
    status: Vec<TxnStatus>,
}

#[derive(Debug, Clone)]
struct SnapshotInfo {
    xmax: TxnId,
    in_flight: Arc<HashSet<TxnId>>,
}

impl TxnManager {
    /// Creates an empty manager.
    pub fn new() -> Arc<TxnManager> {
        Arc::new(TxnManager::default())
    }

    /// Starts a transaction, returning its fresh id.
    pub fn begin(&self) -> TxnId {
        let mut t = self.inner.write();
        t.status.push(TxnStatus::InProgress);
        TxnId(t.status.len() as u64)
    }

    /// Marks `id` committed.
    pub fn commit(&self, id: TxnId) {
        self.set(id, TxnStatus::Committed);
    }

    /// Marks `id` aborted.
    pub fn abort(&self, id: TxnId) {
        self.set(id, TxnStatus::Aborted);
    }

    fn set(&self, id: TxnId, st: TxnStatus) {
        let mut t = self.inner.write();
        let slot = &mut t.status[(id.0 - 1) as usize];
        debug_assert_eq!(*slot, TxnStatus::InProgress, "double finish of {id}");
        *slot = st;
    }

    /// Current status of `id`.
    pub fn status(&self, id: TxnId) -> TxnStatus {
        let t = self.inner.read();
        t.status
            .get((id.0 - 1) as usize)
            .copied()
            .unwrap_or(TxnStatus::InProgress)
    }

    /// Takes a snapshot of the current commit state. The snapshot is
    /// registered until dropped, which holds back the vacuum horizon.
    pub fn snapshot(self: &Arc<TxnManager>) -> Snapshot {
        let t = self.inner.read();
        let xmax = TxnId(t.status.len() as u64 + 1);
        let in_flight: Arc<HashSet<TxnId>> = Arc::new(
            t.status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == TxnStatus::InProgress)
                .map(|(i, _)| TxnId(i as u64 + 1))
                .collect(),
        );
        drop(t);
        let serial = self
            .next_snapshot_serial
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.snapshots.write().insert(
            serial,
            SnapshotInfo {
                xmax,
                in_flight: Arc::clone(&in_flight),
            },
        );
        Snapshot {
            xmax,
            in_flight,
            serial,
            mgr: Arc::clone(self),
        }
    }

    /// True when `id`'s effects are visible to **every** outstanding
    /// snapshot — i.e. `id` committed strictly before each of them. A
    /// version deleted by such a transaction can never be read again.
    pub fn committed_before_all_snapshots(&self, id: TxnId) -> bool {
        if self.status(id) != TxnStatus::Committed {
            return false;
        }
        let snaps = self.snapshots.read();
        snaps
            .values()
            .all(|s| id < s.xmax && !s.in_flight.contains(&id))
    }

    /// Number of currently outstanding snapshots.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.read().len()
    }

    /// True when any transaction is still in progress.
    pub fn any_in_progress(&self) -> bool {
        self.inner.read().status.contains(&TxnStatus::InProgress)
    }

    fn unregister_snapshot(&self, serial: u64) {
        self.snapshots.write().remove(&serial);
    }
}

/// The recency footprint of a snapshot, detached from the snapshot
/// registry: enough to answer [`Snapshot::covers_basis`] but holding
/// nothing back from vacuum. Cheap to clone (the in-flight set is
/// shared).
#[derive(Debug, Clone)]
pub struct SnapshotBasis {
    xmax: TxnId,
    in_flight: Arc<HashSet<TxnId>>,
}

/// A point-in-time view of which transactions' effects are visible.
///
/// Cloning re-registers: every live clone holds back the vacuum horizon.
pub struct Snapshot {
    /// First transaction id *not* visible (ids `>= xmax` started after the
    /// snapshot).
    xmax: TxnId,
    /// Transactions in flight when the snapshot was taken.
    in_flight: Arc<HashSet<TxnId>>,
    /// Registry key; removed on drop.
    serial: u64,
    mgr: Arc<TxnManager>,
}

impl Clone for Snapshot {
    fn clone(&self) -> Snapshot {
        let serial = self
            .mgr
            .next_snapshot_serial
            .fetch_add(1, AtomicOrdering::Relaxed);
        self.mgr.snapshots.write().insert(
            serial,
            SnapshotInfo {
                xmax: self.xmax,
                in_flight: Arc::clone(&self.in_flight),
            },
        );
        Snapshot {
            xmax: self.xmax,
            in_flight: Arc::clone(&self.in_flight),
            serial,
            mgr: Arc::clone(&self.mgr),
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.mgr.unregister_snapshot(self.serial);
    }
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("xmax", &self.xmax)
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl Snapshot {
    /// True iff transaction `id` was committed when this snapshot was
    /// taken (the definition of "its effects are visible here").
    ///
    /// `id == self_id` (the snapshot owner's own writes) is handled by the
    /// caller, see [`Snapshot::sees_version`].
    pub fn committed_before(&self, id: TxnId) -> bool {
        id < self.xmax
            && !self.in_flight.contains(&id)
            && self.mgr.status(id) == TxnStatus::Committed
    }

    /// Extracts the comparison data [`Snapshot::covers_basis`] needs,
    /// without keeping the snapshot itself alive (a registered
    /// [`Snapshot`] holds back the vacuum horizon; a basis does not).
    pub fn coverage_basis(&self) -> SnapshotBasis {
        SnapshotBasis {
            xmax: self.xmax,
            in_flight: Arc::clone(&self.in_flight),
        }
    }

    /// True when every transaction that was visible to the snapshot
    /// `basis` was taken from is also visible here — i.e. this snapshot
    /// is at least as recent. Used by delta-maintained report state:
    /// state folded under one snapshot may only serve a snapshot that
    /// covers it, otherwise the server falls back to a rescan.
    ///
    /// The check is conservative: a transaction this snapshot saw in
    /// flight that has committed *since* is treated as possibly visible
    /// to the basis (we cannot reconstruct when it committed), so an
    /// occasional false `false` forces a harmless rescan; `true` is
    /// always sound.
    pub fn covers_basis(&self, basis: &SnapshotBasis) -> bool {
        if self.xmax < basis.xmax {
            // Transactions in [self.xmax, basis.xmax) may be visible to
            // the basis but started after this snapshot.
            return false;
        }
        self.in_flight.iter().all(|t| {
            // A txn we can't see is fine unless the basis could see it:
            // it must have started after the basis, been in flight there
            // too, or still be uncommitted.
            *t >= basis.xmax
                || basis.in_flight.contains(t)
                || self.mgr.status(*t) != TxnStatus::Committed
        })
    }

    /// Visibility of a row version `(xmin, xmax)` to this snapshot, where
    /// `own` is the id of the transaction reading through this snapshot
    /// (its own uncommitted writes are visible to itself).
    pub fn sees_version(&self, own: Option<TxnId>, xmin: TxnId, xmax: Option<TxnId>) -> bool {
        let created = own == Some(xmin) || self.committed_before(xmin);
        if !created {
            return false;
        }
        match xmax {
            None => true,
            Some(x) => !(own == Some(x) || self.committed_before(x)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let m = TxnManager::new();
        assert_eq!(m.begin(), TxnId(1));
        assert_eq!(m.begin(), TxnId(2));
        assert_eq!(m.status(TxnId(1)), TxnStatus::InProgress);
        m.commit(TxnId(1));
        m.abort(TxnId(2));
        assert_eq!(m.status(TxnId(1)), TxnStatus::Committed);
        assert_eq!(m.status(TxnId(2)), TxnStatus::Aborted);
    }

    #[test]
    fn snapshot_excludes_later_and_in_flight_txns() {
        let m = TxnManager::new();
        let t1 = m.begin();
        m.commit(t1);
        let t2 = m.begin(); // in flight at snapshot time
        let snap = m.snapshot();
        let t3 = m.begin(); // starts after snapshot
        m.commit(t2);
        m.commit(t3);
        assert!(snap.committed_before(t1));
        assert!(!snap.committed_before(t2), "committed after snapshot");
        assert!(!snap.committed_before(t3), "started after snapshot");
    }

    #[test]
    fn aborted_txns_are_never_visible() {
        let m = TxnManager::new();
        let t1 = m.begin();
        m.abort(t1);
        let snap = m.snapshot();
        assert!(!snap.committed_before(t1));
    }

    #[test]
    fn version_visibility() {
        let m = TxnManager::new();
        let t1 = m.begin();
        m.commit(t1);
        let t2 = m.begin();
        let snap = m.snapshot();
        // Row created by committed t1, not deleted: visible.
        assert!(snap.sees_version(None, t1, None));
        // Deleted by in-flight t2: still visible to the snapshot...
        assert!(snap.sees_version(None, t1, Some(t2)));
        // ...but not to t2 itself.
        assert!(!snap.sees_version(Some(t2), t1, Some(t2)));
        // Row created by t2: visible only to t2.
        assert!(!snap.sees_version(None, t2, None));
        assert!(snap.sees_version(Some(t2), t2, None));
    }

    #[test]
    fn snapshot_is_stable_across_later_commits() {
        let m = TxnManager::new();
        let t1 = m.begin();
        let snap = m.snapshot();
        m.commit(t1);
        // t1 was in flight at snapshot time; committing later must not
        // change what the snapshot sees.
        assert!(!snap.committed_before(t1));
        let fresh = m.snapshot();
        assert!(fresh.committed_before(t1));
    }
}
