//! Row-level CHECK constraints (the hook half).
//!
//! The paper's Section 3.4 notes that schema constraints restrict the
//! *potential tuples* relevance ranges over: "the definitions of
//! 'relevant sources' would have to be augmented to restrict the tuples
//! considered to be those that, when appended to the relation instance,
//! give a legal instance … This will have the effect in some cases of
//! further increasing the precision of the set of relevant sources" —
//! and leaves it as future work. We implement it.
//!
//! Storage cannot depend on the expression machinery (that would be a
//! dependency cycle), so constraints are installed behind this object-
//! safe trait; `trac-expr` provides the concrete implementation backed by
//! a bound expression, and the relevance analyzer downcasts through
//! [`RowCheck::as_any`] to recover the expression for Q → Q' rewriting.

use crate::error::Result;
use crate::value::Value;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// An object-safe row predicate enforced on every insert/update.
pub trait RowCheck: Send + Sync + fmt::Debug {
    /// Constraint name (for error messages: `CHECK no_self_neighbor`).
    fn name(&self) -> &str;
    /// True when `row` satisfies the constraint. NULL-valued checks
    /// follow SQL CHECK semantics: unknown passes.
    fn check(&self, row: &[Value]) -> Result<bool>;
    /// Downcast support for layers that know the concrete type.
    fn as_any(&self) -> &dyn Any;
    /// SQL rendering of the constraint body (for display / catalogs).
    fn display_sql(&self) -> String;
}

/// Shared handle to a constraint.
pub type RowCheckRef = Arc<dyn RowCheck>;

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct NonNegative(usize);

    impl RowCheck for NonNegative {
        fn name(&self) -> &str {
            "non_negative"
        }
        fn check(&self, row: &[Value]) -> Result<bool> {
            Ok(match row.get(self.0) {
                Some(Value::Int(i)) => *i >= 0,
                _ => true,
            })
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn display_sql(&self) -> String {
            format!("col{} >= 0", self.0)
        }
    }

    #[test]
    fn trait_is_object_safe_and_downcasts() {
        let c: RowCheckRef = Arc::new(NonNegative(1));
        assert!(c.check(&[Value::Null, Value::Int(3)]).unwrap());
        assert!(!c.check(&[Value::Null, Value::Int(-1)]).unwrap());
        assert_eq!(c.name(), "non_negative");
        assert!(c.as_any().downcast_ref::<NonNegative>().is_some());
        assert_eq!(c.display_sql(), "col1 >= 0");
    }
}
