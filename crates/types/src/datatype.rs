//! SQL data types.

use std::fmt;

/// The scalar data types supported by the engine.
///
/// This is deliberately the small set the paper's schemas need: machine
/// ids and activity values are text, job ids and counters are integers,
/// event/recency times are timestamps. `Float` and `Bool` round the set
/// out for statistics and predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Microsecond-precision timestamp.
    Timestamp,
}

impl DataType {
    /// True if values of `self` can be compared with values of `other`
    /// without an explicit cast. Ints and floats are mutually comparable.
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other || self.is_numeric() && other.is_numeric()
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// SQL spelling of the type, as accepted by `CREATE TABLE`.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// Parses a SQL type name (case-insensitive, with common aliases).
    pub fn parse_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "INT8" | "INT4" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "FLOAT8" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Text),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "TIMESTAMP" | "TIMESTAMPTZ" | "DATETIME" => Some(DataType::Timestamp),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_name_roundtrip() {
        for dt in [
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bool,
            DataType::Timestamp,
        ] {
            assert_eq!(DataType::parse_sql_name(dt.sql_name()), Some(dt));
        }
    }

    #[test]
    fn aliases() {
        assert_eq!(DataType::parse_sql_name("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse_sql_name("VarChar"), Some(DataType::Text));
        assert_eq!(DataType::parse_sql_name("double"), Some(DataType::Float));
        assert_eq!(
            DataType::parse_sql_name("datetime"),
            Some(DataType::Timestamp)
        );
        assert_eq!(DataType::parse_sql_name("blob"), None);
    }

    #[test]
    fn comparability() {
        assert!(DataType::Int.comparable_with(DataType::Float));
        assert!(DataType::Float.comparable_with(DataType::Int));
        assert!(DataType::Text.comparable_with(DataType::Text));
        assert!(!DataType::Text.comparable_with(DataType::Int));
        assert!(!DataType::Timestamp.comparable_with(DataType::Bool));
    }
}
