//! Column domains: the `D_1 × D_2 × … × D_k × D_s` model of Section 3.4.
//!
//! The paper defines relevance over *potential* tuples drawn from the cross
//! product of column domains, and its evaluation "used a test schema
//! specially designed so that a finite domain with a reasonable cardinality
//! is associated with each column" so the brute-force oracle can compute
//! the exact relevant source set. [`ColumnDomain`] captures exactly that:
//! a column is either unconstrained ([`ColumnDomain::Any`]) or carries a
//! finite/enumerable domain the oracle and satisfiability checker exploit.

use crate::datatype::DataType;
use crate::timestamp::Timestamp;
use crate::value::Value;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The domain of values a column may take.
///
/// Cloning is cheap: large text sets are shared behind an [`Arc`], since
/// schemas (and their domains) are cloned on every bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnDomain {
    /// The full (conceptually infinite) domain of a data type.
    Any(DataType),
    /// All integers in `lo..=hi`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// An explicit finite set of strings (e.g. machine ids, activity values).
    TextSet(Arc<BTreeSet<String>>),
    /// All whole-second timestamps in `lo..=hi` (1-second granularity keeps
    /// enumeration meaningful for the oracle while modelling event times).
    TimestampRange {
        /// Inclusive lower bound.
        lo: Timestamp,
        /// Inclusive upper bound.
        hi: Timestamp,
    },
    /// `{false, true}`.
    Bools,
}

impl ColumnDomain {
    /// Builds a text-set domain from anything yielding string-likes.
    pub fn text_set<I, S>(items: I) -> ColumnDomain
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ColumnDomain::TextSet(Arc::new(items.into_iter().map(Into::into).collect()))
    }

    /// The data type of values in this domain.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnDomain::Any(t) => *t,
            ColumnDomain::IntRange { .. } => DataType::Int,
            ColumnDomain::TextSet(_) => DataType::Text,
            ColumnDomain::TimestampRange { .. } => DataType::Timestamp,
            ColumnDomain::Bools => DataType::Bool,
        }
    }

    /// True when `v` is a member of this domain. `Null` is never a member:
    /// the paper's potential tuples are drawn from the value domains.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Null) => false,
            (ColumnDomain::Any(t), v) => {
                v.data_type() == Some(*t) || (*t == DataType::Float && matches!(v, Value::Int(_)))
            }
            (ColumnDomain::IntRange { lo, hi }, Value::Int(i)) => lo <= i && i <= hi,
            (ColumnDomain::TextSet(s), Value::Text(t)) => s.contains(t),
            (ColumnDomain::TimestampRange { lo, hi }, Value::Timestamp(t)) => lo <= t && t <= hi,
            (ColumnDomain::Bools, Value::Bool(_)) => true,
            _ => false,
        }
    }

    /// True when the domain has finitely many members.
    pub fn is_finite(&self) -> bool {
        !matches!(self, ColumnDomain::Any(_))
    }

    /// Number of members, if finite and representable.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            ColumnDomain::Any(_) => None,
            ColumnDomain::IntRange { lo, hi } => {
                if lo > hi {
                    Some(0)
                } else {
                    u64::try_from(hi.wrapping_sub(*lo)).ok()?.checked_add(1)
                }
            }
            ColumnDomain::TextSet(s) => Some(s.len() as u64),
            ColumnDomain::TimestampRange { lo, hi } => {
                if lo > hi {
                    Some(0)
                } else {
                    let span_secs = (hi.micros() - lo.micros()) / 1_000_000;
                    u64::try_from(span_secs).ok()?.checked_add(1)
                }
            }
            ColumnDomain::Bools => Some(2),
        }
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.cardinality() == Some(0)
    }

    /// Enumerates all members, or `None` when infinite or larger than
    /// `cap`. The brute-force relevance oracle iterates these.
    pub fn enumerate(&self, cap: u64) -> Option<Vec<Value>> {
        let n = self.cardinality()?;
        if n > cap {
            return None;
        }
        Some(match self {
            ColumnDomain::Any(_) => unreachable!("cardinality was Some"),
            ColumnDomain::IntRange { lo, hi } => (*lo..=*hi).map(Value::Int).collect(),
            ColumnDomain::TextSet(s) => s.iter().cloned().map(Value::Text).collect(),
            ColumnDomain::TimestampRange { lo, hi } => {
                let mut out = Vec::with_capacity(n as usize);
                let mut t = lo.micros();
                while t <= hi.micros() {
                    out.push(Value::Timestamp(Timestamp::from_micros(t)));
                    t += 1_000_000;
                }
                out
            }
            ColumnDomain::Bools => vec![Value::Bool(false), Value::Bool(true)],
        })
    }

    /// A sample member of the domain, if one exists. Used by the
    /// satisfiability checker as a witness when a column is unconstrained
    /// by a conjunction.
    pub fn sample(&self) -> Option<Value> {
        match self {
            ColumnDomain::Any(DataType::Int) => Some(Value::Int(0)),
            ColumnDomain::Any(DataType::Float) => Some(Value::Float(0.0)),
            ColumnDomain::Any(DataType::Text) => Some(Value::text("")),
            ColumnDomain::Any(DataType::Bool) => Some(Value::Bool(false)),
            ColumnDomain::Any(DataType::Timestamp) => Some(Value::Timestamp(Timestamp(0))),
            ColumnDomain::IntRange { lo, hi } => (lo <= hi).then_some(Value::Int(*lo)),
            ColumnDomain::TextSet(s) => s.iter().next().cloned().map(Value::Text),
            ColumnDomain::TimestampRange { lo, hi } => (lo <= hi).then_some(Value::Timestamp(*lo)),
            ColumnDomain::Bools => Some(Value::Bool(false)),
        }
    }

    /// True if the two domains share at least one member. Conservative:
    /// returns `true` when membership cannot be decided cheaply.
    ///
    /// Used to reason about join predicates like
    /// `Routing.neighbor = Activity.mach_id` — the paper's Section 4.1.2
    /// counter-example notes that if the two domains do not intersect, the
    /// join predicate is unsatisfiable and the relevant set collapses.
    pub fn intersects(&self, other: &ColumnDomain) -> bool {
        use ColumnDomain::*;
        match (self, other) {
            (Any(a), b) | (b, Any(a)) => b.data_type().comparable_with(*a),
            (IntRange { lo: a, hi: b }, IntRange { lo: c, hi: d }) => a.max(c) <= b.min(d),
            (TextSet(a), TextSet(b)) => {
                // Iterate the smaller set.
                let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small.iter().any(|s| big.contains(s))
            }
            (TimestampRange { lo: a, hi: b }, TimestampRange { lo: c, hi: d }) => {
                a.max(c) <= b.min(d)
            }
            (Bools, Bools) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_membership_and_cardinality() {
        let d = ColumnDomain::IntRange { lo: -2, hi: 3 };
        assert!(d.contains(&Value::Int(0)));
        assert!(d.contains(&Value::Int(-2)));
        assert!(d.contains(&Value::Int(3)));
        assert!(!d.contains(&Value::Int(4)));
        assert!(!d.contains(&Value::text("0")));
        assert!(!d.contains(&Value::Null));
        assert_eq!(d.cardinality(), Some(6));
        assert_eq!(d.enumerate(10).unwrap().len(), 6);
        assert_eq!(d.enumerate(5), None); // over cap
    }

    #[test]
    fn empty_ranges() {
        let d = ColumnDomain::IntRange { lo: 5, hi: 4 };
        assert_eq!(d.cardinality(), Some(0));
        assert!(d.is_empty());
        assert_eq!(d.sample(), None);
        assert_eq!(d.enumerate(10).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn text_set() {
        let d = ColumnDomain::text_set(["m1", "m2", "m3"]);
        assert!(d.contains(&Value::text("m2")));
        assert!(!d.contains(&Value::text("m9")));
        assert_eq!(d.cardinality(), Some(3));
        let all = d.enumerate(10).unwrap();
        assert_eq!(
            all,
            vec![Value::text("m1"), Value::text("m2"), Value::text("m3")]
        );
    }

    #[test]
    fn timestamp_range_enumeration_is_second_granular() {
        let lo = Timestamp::from_secs(100);
        let hi = Timestamp::from_secs(103);
        let d = ColumnDomain::TimestampRange { lo, hi };
        assert_eq!(d.cardinality(), Some(4));
        let vals = d.enumerate(10).unwrap();
        assert_eq!(vals.len(), 4);
        assert_eq!(vals[0], Value::Timestamp(lo));
        assert_eq!(vals[3], Value::Timestamp(hi));
    }

    #[test]
    fn any_domain_is_infinite() {
        let d = ColumnDomain::Any(DataType::Text);
        assert!(!d.is_finite());
        assert_eq!(d.cardinality(), None);
        assert_eq!(d.enumerate(1_000_000), None);
        assert!(d.contains(&Value::text("anything")));
        assert!(!d.contains(&Value::Int(1)));
        // Float domain accepts ints (numeric coercion).
        assert!(ColumnDomain::Any(DataType::Float).contains(&Value::Int(1)));
    }

    #[test]
    fn intersections() {
        let a = ColumnDomain::text_set(["m1", "m2"]);
        let b = ColumnDomain::text_set(["m2", "m3"]);
        let c = ColumnDomain::text_set(["x"]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&ColumnDomain::Any(DataType::Text)));
        assert!(!a.intersects(&ColumnDomain::Any(DataType::Int)));
        let r1 = ColumnDomain::IntRange { lo: 0, hi: 10 };
        let r2 = ColumnDomain::IntRange { lo: 10, hi: 20 };
        let r3 = ColumnDomain::IntRange { lo: 11, hi: 20 };
        assert!(r1.intersects(&r2));
        assert!(!r1.intersects(&r3));
    }

    #[test]
    fn samples_are_members() {
        let doms = [
            ColumnDomain::IntRange { lo: 3, hi: 9 },
            ColumnDomain::text_set(["only"]),
            ColumnDomain::Bools,
            ColumnDomain::TimestampRange {
                lo: Timestamp::from_secs(1),
                hi: Timestamp::from_secs(2),
            },
            ColumnDomain::Any(DataType::Int),
            ColumnDomain::Any(DataType::Text),
        ];
        for d in &doms {
            let s = d.sample().expect("non-empty domain has a sample");
            assert!(d.contains(&s), "sample {s:?} not in {d:?}");
        }
    }
}
