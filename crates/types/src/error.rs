//! The shared error type for all TRAC crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, TracError>;

/// The error type shared by every layer of the system.
///
/// Variants are grouped by the subsystem that typically raises them; all
/// carry human-readable context because the primary consumer is a user at
/// a SQL prompt (mirroring the PostgreSQL `NOTICE`/`ERROR` surface of the
/// paper's prototype).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TracError {
    /// Lexing or parsing a SQL string failed.
    Parse(String),
    /// Name resolution failed: unknown table, column, ambiguous reference.
    Resolution(String),
    /// A value had the wrong type for an operation or column.
    Type(String),
    /// Catalog-level problem: duplicate table, missing index, etc.
    Catalog(String),
    /// Storage/transaction problem: write conflict, unknown row, etc.
    Storage(String),
    /// Transaction was aborted (e.g. first-updater-wins conflict).
    TxnAborted(String),
    /// Query execution failed.
    Execution(String),
    /// The recency/relevance analyzer rejected or could not handle a query.
    Analysis(String),
    /// A constraint (e.g. source-column tagging discipline) was violated.
    Constraint(String),
    /// Invalid configuration of a workload, sweep, or simulator.
    Config(String),
}

impl TracError {
    /// Short machine-friendly category tag, useful in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            TracError::Parse(_) => "parse",
            TracError::Resolution(_) => "resolution",
            TracError::Type(_) => "type",
            TracError::Catalog(_) => "catalog",
            TracError::Storage(_) => "storage",
            TracError::TxnAborted(_) => "txn_aborted",
            TracError::Execution(_) => "execution",
            TracError::Analysis(_) => "analysis",
            TracError::Constraint(_) => "constraint",
            TracError::Config(_) => "config",
        }
    }

    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            TracError::Parse(m)
            | TracError::Resolution(m)
            | TracError::Type(m)
            | TracError::Catalog(m)
            | TracError::Storage(m)
            | TracError::TxnAborted(m)
            | TracError::Execution(m)
            | TracError::Analysis(m)
            | TracError::Constraint(m)
            | TracError::Config(m) => m,
        }
    }
}

impl fmt::Display for TracError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for TracError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = TracError::Parse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token `FROM`");
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            TracError::Parse(String::new()),
            TracError::Resolution(String::new()),
            TracError::Type(String::new()),
            TracError::Catalog(String::new()),
            TracError::Storage(String::new()),
            TracError::TxnAborted(String::new()),
            TracError::Execution(String::new()),
            TracError::Analysis(String::new()),
            TracError::Constraint(String::new()),
            TracError::Config(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(TracError::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&TracError::Storage("x".into()));
    }
}
