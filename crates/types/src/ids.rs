//! Identifier newtypes.

use crate::value::Value;
use std::fmt;

/// A data source identifier.
///
/// In the paper's deployments a data source is a machine (or the bundle of
/// monitored process + sniffer on it); ids are strings such as `m1` or
/// `Tao100`. Source ids live in the data source column of user relations
/// and in the key column of the `Heartbeat` table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub String);

impl SourceId {
    /// Builds a source id from any string-like.
    pub fn new(s: impl Into<String>) -> SourceId {
        SourceId(s.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The id as a SQL [`Value`] (text).
    pub fn to_value(&self) -> Value {
        Value::Text(self.0.clone())
    }

    /// Extracts a source id from a [`Value`], if it is text.
    pub fn from_value(v: &Value) -> Option<SourceId> {
        v.as_text().map(SourceId::new)
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SourceId {
    fn from(s: &str) -> SourceId {
        SourceId::new(s)
    }
}

impl From<String> for SourceId {
    fn from(s: String) -> SourceId {
        SourceId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_value() {
        let s = SourceId::new("m1");
        let v = s.to_value();
        assert_eq!(SourceId::from_value(&v), Some(s));
        assert_eq!(SourceId::from_value(&Value::Int(1)), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut ids = [SourceId::new("m2"), SourceId::new("m1")];
        ids.sort();
        assert_eq!(ids[0].as_str(), "m1");
        assert_eq!(ids[0].to_string(), "m1");
    }
}
