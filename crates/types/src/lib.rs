//! Core value and type definitions shared by every TRAC crate.
//!
//! This crate is the foundation of the TRAC reproduction: SQL values and
//! data types ([`Value`], [`DataType`]), event/recency timestamps
//! ([`Timestamp`], [`TsDuration`]), the finite column-domain model used by
//! the paper's relevance definitions ([`ColumnDomain`]), and the common
//! error type ([`TracError`]).
//!
//! The paper (Section 3.4) models every relation column as having a domain
//! `D_i`; the data source column has domain `D_s`, which is the set of
//! source ids recorded in the `Heartbeat` table. Relevance of a data source
//! is defined over *potential* tuples drawn from the cross product of these
//! domains, so domains are a first-class concept here rather than an
//! afterthought.

#![warn(missing_docs)]

pub mod check;
pub mod datatype;
pub mod domain;
pub mod error;
pub mod ids;
pub mod timestamp;
pub mod value;

pub use check::{RowCheck, RowCheckRef};
pub use datatype::DataType;
pub use domain::ColumnDomain;
pub use error::{Result, TracError};
pub use ids::SourceId;
pub use timestamp::{Timestamp, TsDuration};
pub use value::Value;
