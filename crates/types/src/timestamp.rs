//! Event and recency timestamps.
//!
//! Every update streaming in from a data source is tagged with the time of
//! the event it records (paper Section 3.1), and the `Heartbeat` table maps
//! each source to its recency timestamp. We represent timestamps as
//! microseconds since the Unix epoch and implement the small amount of
//! civil-calendar arithmetic needed to parse and print
//! `YYYY-MM-DD HH:MM:SS[.ffffff]` strings, so the crate has no external
//! time dependency.

use crate::error::{Result, TracError};
use std::fmt;
use std::ops::{Add, Sub};

/// Microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;
/// Microseconds in one day.
pub const MICROS_PER_DAY: i64 = 86_400 * MICROS_PER_SEC;

/// An absolute point in time: microseconds since `1970-01-01 00:00:00`.
///
/// Ordering is the natural chronological ordering, which is what the
/// recency statistics (min / max / range, Section 4.3) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A signed span between two [`Timestamp`]s, in microseconds.
///
/// Displayed in the `HH:MM:SS` form the paper's prototype uses for the
/// "bound of inconsistency" (e.g. `00:20:00`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TsDuration(pub i64);

impl Timestamp {
    /// The earliest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The latest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Builds a timestamp from whole seconds since the epoch.
    pub fn from_secs(secs: i64) -> Timestamp {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Builds a timestamp from microseconds since the epoch.
    pub fn from_micros(micros: i64) -> Timestamp {
        Timestamp(micros)
    }

    /// Microseconds since the epoch.
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch (truncated toward negative infinity).
    pub fn secs(self) -> i64 {
        self.0.div_euclid(MICROS_PER_SEC)
    }

    /// Builds a timestamp from a civil date and time-of-day.
    ///
    /// Returns an error for out-of-range components (month 13, Feb 30, …).
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        min: u32,
        sec: u32,
    ) -> Result<Timestamp> {
        if !(1..=12).contains(&month) {
            return Err(TracError::Type(format!("month out of range: {month}")));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(TracError::Type(format!(
                "day out of range: {year:04}-{month:02}-{day:02}"
            )));
        }
        if hour > 23 || min > 59 || sec > 59 {
            return Err(TracError::Type(format!(
                "time out of range: {hour:02}:{min:02}:{sec:02}"
            )));
        }
        let days = days_from_civil(year, month, day);
        let secs = days * 86_400 + i64::from(hour) * 3600 + i64::from(min) * 60 + i64::from(sec);
        Ok(Timestamp(secs * MICROS_PER_SEC))
    }

    /// Parses `YYYY-MM-DD HH:MM:SS[.ffffff]`; the time part may be omitted
    /// (midnight is assumed).
    pub fn parse(s: &str) -> Result<Timestamp> {
        let s = s.trim();
        let bad = || TracError::Type(format!("invalid timestamp literal: {s:?}"));
        let (date_part, time_part) = match s.split_once([' ', 'T']) {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dit = date_part.splitn(3, '-');
        let year: i32 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = dit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let (mut hour, mut min, mut sec, mut micros) = (0u32, 0u32, 0u32, 0i64);
        if let Some(t) = time_part {
            let (hms, frac) = match t.split_once('.') {
                Some((h, f)) => (h, Some(f)),
                None => (t, None),
            };
            let mut tit = hms.splitn(3, ':');
            hour = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            min = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            sec = tit.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            if let Some(f) = frac {
                if f.is_empty() || f.len() > 6 || !f.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(bad());
                }
                let scale = 10i64.pow(6 - f.len() as u32);
                micros = f.parse::<i64>().map_err(|_| bad())? * scale;
            }
        }
        let base = Timestamp::from_ymd_hms(year, month, day, hour, min, sec)?;
        Ok(Timestamp(base.0 + micros))
    }

    /// Decomposes into `(year, month, day, hour, minute, second, micros)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(MICROS_PER_DAY);
        let rem = self.0.rem_euclid(MICROS_PER_DAY);
        let (y, m, d) = civil_from_days(days);
        let total_secs = rem / MICROS_PER_SEC;
        let micros = (rem % MICROS_PER_SEC) as u32;
        let hour = (total_secs / 3600) as u32;
        let min = ((total_secs % 3600) / 60) as u32;
        let sec = (total_secs % 60) as u32;
        (y, m, d, hour, min, sec, micros)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: TsDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl Add<TsDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: TsDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<TsDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: TsDuration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TsDuration;
    fn sub(self, rhs: Timestamp) -> TsDuration {
        TsDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s, us) = self.to_civil();
        if us == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
        } else {
            write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}.{us:06}")
        }
    }
}

impl TsDuration {
    /// A duration of zero.
    pub const ZERO: TsDuration = TsDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: i64) -> TsDuration {
        TsDuration(secs * MICROS_PER_SEC)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(micros: i64) -> TsDuration {
        TsDuration(micros)
    }

    /// Builds a duration from whole minutes.
    pub fn from_mins(mins: i64) -> TsDuration {
        TsDuration::from_secs(mins * 60)
    }

    /// The duration in microseconds.
    pub fn micros(self) -> i64 {
        self.0
    }

    /// The duration in (truncated) whole seconds.
    pub fn secs(self) -> i64 {
        self.0 / MICROS_PER_SEC
    }

    /// The duration as seconds in floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Absolute value.
    pub fn abs(self) -> TsDuration {
        TsDuration(self.0.abs())
    }
}

impl fmt::Display for TsDuration {
    /// Formats as `[-]HH:MM:SS[.ffffff]` (hours may exceed two digits), the
    /// shape of the prototype's "Bound of inconsistency: 00:20:00" notice.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let neg = self.0 < 0;
        let total = self.0.unsigned_abs();
        let micros = total % MICROS_PER_SEC as u64;
        let secs = total / MICROS_PER_SEC as u64;
        let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
        if neg {
            write!(f, "-")?;
        }
        if micros == 0 {
            write!(f, "{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}.{micros:06}")
        }
    }
}

/// True when `year` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since the epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since the epoch (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        let t = Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(t, Timestamp(0));
        assert_eq!(t.to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn paper_table1_timestamps_parse_and_display() {
        // Table 1 uses timestamps like "03/11/2006 20:37:46"; we adopt the
        // ISO form the prototype session output uses ("2006-03-15 14:20:05").
        let t = Timestamp::parse("2006-03-15 14:20:05").unwrap();
        assert_eq!(t.to_string(), "2006-03-15 14:20:05");
        let (y, m, d, h, mi, s, us) = t.to_civil();
        assert_eq!((y, m, d, h, mi, s, us), (2006, 3, 15, 14, 20, 5, 0));
    }

    #[test]
    fn parse_with_fraction() {
        let t = Timestamp::parse("2006-03-15 14:20:05.5").unwrap();
        assert_eq!(t.micros() % MICROS_PER_SEC, 500_000);
        assert_eq!(t.to_string(), "2006-03-15 14:20:05.500000");
        let t2 = Timestamp::parse("2006-03-15 14:20:05.000001").unwrap();
        assert_eq!(t2.micros() % MICROS_PER_SEC, 1);
    }

    #[test]
    fn parse_date_only_is_midnight() {
        let t = Timestamp::parse("2006-02-10").unwrap();
        assert_eq!(t.to_string(), "2006-02-10 00:00:00");
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "2006",
            "2006-13-01",
            "2006-02-30",
            "2006-02-10 25:00:00",
            "2006-02-10 10:61:00",
            "2006-02-10 10:00:00.1234567",
            "not a date",
        ] {
            assert!(Timestamp::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(2006));
        assert!(Timestamp::parse("2004-02-29").is_ok());
        assert!(Timestamp::parse("2006-02-29").is_err());
    }

    #[test]
    fn civil_roundtrip_sweep() {
        // Round-trip every 1000th day over ~55 years around the epoch.
        for days in (-10_000..10_000).step_by(37) {
            let t = Timestamp(days * MICROS_PER_DAY + 12_345);
            let (y, m, d, h, mi, s, us) = t.to_civil();
            let back = Timestamp::from_ymd_hms(y, m, d, h, mi, s).unwrap();
            assert_eq!(back.0 + i64::from(us), t.0);
        }
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Timestamp::parse("2006-03-15 14:20:05").unwrap();
        let b = Timestamp::parse("2006-03-15 14:40:05").unwrap();
        assert!(a < b);
        assert_eq!(b - a, TsDuration::from_mins(20));
    }

    #[test]
    fn duration_display_matches_prototype_bound_of_inconsistency() {
        // The paper's session shows "Bound of inconsistency: 00:20:00".
        assert_eq!(TsDuration::from_mins(20).to_string(), "00:20:00");
        assert_eq!(TsDuration::from_secs(3_661).to_string(), "01:01:01");
        assert_eq!(TsDuration::from_secs(-90).to_string(), "-00:01:30");
        assert_eq!(
            TsDuration::from_micros(1_500_000).to_string(),
            "00:00:01.500000"
        );
        // Multi-day ranges roll into hours rather than days.
        assert_eq!(TsDuration::from_secs(90_000).to_string(), "25:00:00");
    }

    #[test]
    fn arithmetic() {
        let a = Timestamp::from_secs(100);
        let d = TsDuration::from_secs(40);
        assert_eq!(a + d, Timestamp::from_secs(140));
        assert_eq!(a - d, Timestamp::from_secs(60));
        assert_eq!((a + d) - a, d);
        assert_eq!(d.abs(), d);
        assert_eq!(TsDuration(-5).abs(), TsDuration(5));
        assert_eq!(
            Timestamp::MAX.saturating_add(TsDuration::from_secs(1)),
            Timestamp::MAX
        );
    }

    #[test]
    fn secs_truncation() {
        assert_eq!(Timestamp(1_500_000).secs(), 1);
        assert_eq!(Timestamp(-1_500_000).secs(), -2); // floor division
        assert_eq!(TsDuration(1_500_000).secs(), 1);
        assert!((TsDuration(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
