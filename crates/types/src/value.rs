//! Runtime SQL values.

use crate::datatype::DataType;
use crate::error::{Result, TracError};
use crate::timestamp::Timestamp;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed SQL value.
///
/// Two comparison regimes coexist:
///
/// * **Storage order** ([`Ord`]/[`Eq`]/[`Hash`]): a total order used for
///   B-tree index keys, sort operators and hash-join keys. `Null` sorts
///   first, values of different types sort by type rank, floats use IEEE
///   total ordering. Within a well-typed column only one type occurs, so
///   the cross-type cases never surface to users.
/// * **SQL order** ([`Value::sql_cmp`]): three-valued comparison used by
///   predicate evaluation. Comparing with `Null` yields `None` (unknown),
///   `Int` and `Float` compare numerically.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Microsecond timestamp.
    Timestamp(Timestamp),
}

impl Value {
    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Builds a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the value is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if the value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Timestamp view, if the value is `Timestamp`.
    pub fn as_timestamp(&self) -> Option<Timestamp> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Boolean view, if the value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Checks that the value may be stored in a column of type `ty`
    /// (NULL is storable in any column; `Int` is accepted by `Float`
    /// columns and silently widened).
    pub fn coerce_to(self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Bool(_), DataType::Bool)
            | (v @ Value::Int(_), DataType::Int)
            | (v @ Value::Float(_), DataType::Float)
            | (v @ Value::Text(_), DataType::Text)
            | (v @ Value::Timestamp(_), DataType::Timestamp) => Ok(v),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (Value::Text(s), DataType::Timestamp) => Ok(Value::Timestamp(Timestamp::parse(&s)?)),
            (v, ty) => Err(TracError::Type(format!(
                "cannot store {} in a {ty} column",
                v.type_name()
            ))),
        }
    }

    /// Human-readable name of the value's type (including "NULL").
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
            Value::Timestamp(_) => "TIMESTAMP",
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality under three-valued logic: `None` means unknown.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Renders the value as a SQL literal (single quotes doubled inside
    /// text), suitable for splicing into a generated recency query.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Timestamp(t) => format!("TIMESTAMP '{t}'"),
        }
    }

    /// Rank used by the storage total order to separate types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
            Value::Timestamp(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
            Value::Timestamp(t) => t.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Timestamp(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Value {
        Value::Timestamp(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        // Incomparable types are unknown, not an error.
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn storage_order_is_total_and_consistent_with_eq() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(7),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(0.0),
            Value::Float(f64::NAN),
            Value::text(""),
            Value::text("abc"),
            Value::Timestamp(Timestamp::from_secs(5)),
        ];
        for a in &vals {
            for b in &vals {
                let o = a.cmp(b);
                assert_eq!(o.reverse(), b.cmp(a));
                assert_eq!(o == Ordering::Equal, a == b);
            }
        }
    }

    #[test]
    fn nan_equals_itself_in_storage_order() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b); // total_cmp
        assert_eq!(a.cmp(&b), Ordering::Equal);
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
        assert!(Value::text("x").coerce_to(DataType::Int).is_err());
        let ts = Value::text("2006-03-15 14:20:05")
            .coerce_to(DataType::Timestamp)
            .unwrap();
        assert_eq!(
            ts,
            Value::Timestamp(Timestamp::parse("2006-03-15 14:20:05").unwrap())
        );
    }

    #[test]
    fn sql_literals() {
        assert_eq!(Value::text("m1").to_sql_literal(), "'m1'");
        assert_eq!(Value::text("o'brien").to_sql_literal(), "'o''brien'");
        assert_eq!(Value::Int(42).to_sql_literal(), "42");
        assert_eq!(Value::Float(1.0).to_sql_literal(), "1.0");
        assert_eq!(Value::Float(1.25).to_sql_literal(), "1.25");
        assert_eq!(Value::Bool(true).to_sql_literal(), "TRUE");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        let t = Timestamp::parse("2006-03-15 14:20:05").unwrap();
        assert_eq!(
            Value::Timestamp(t).to_sql_literal(),
            "TIMESTAMP '2006-03-15 14:20:05'"
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::text("m1")), h(&Value::text("m1")));
        assert_eq!(h(&Value::Float(f64::NAN)), h(&Value::Float(f64::NAN)));
        assert_ne!(h(&Value::Int(1)), h(&Value::text("1")));
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
    }
}
