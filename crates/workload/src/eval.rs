//! The Section 5.2 synthetic data generator and test queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use trac_storage::{heartbeat, ColumnDef, Database, TableId, TableSchema, HEARTBEAT_TABLE};
use trac_types::{ColumnDomain, DataType, Result, Timestamp, TracError, TsDuration, Value};

/// One point of the paper's sweep: `data_ratio × n_sources = total_rows`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Rows per data source in `Activity`.
    pub data_ratio: u64,
    /// Number of data sources.
    pub n_sources: u64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Total `Activity` rows (paper: 10,000,000; our default 1,000,000 —
    /// see DESIGN.md's scale substitution).
    pub total_rows: u64,
    /// Rows per source; must divide `total_rows`.
    pub data_ratio: u64,
    /// RNG seed.
    pub seed: u64,
    /// Base timestamp for events and heartbeats.
    pub base: Timestamp,
    /// Spread of heartbeat recency timestamps across sources, seconds.
    pub heartbeat_spread_secs: i64,
    /// Number of sources made exceptionally stale (z-score outliers).
    pub n_stale_sources: u64,
    /// How far behind the stale sources sit, seconds.
    pub stale_secs: i64,
}

impl EvalConfig {
    /// The paper's default shape at a given total size and ratio.
    pub fn new(total_rows: u64, data_ratio: u64) -> EvalConfig {
        EvalConfig {
            total_rows,
            data_ratio,
            seed: 7,
            base: Timestamp::parse("2006-03-15 14:00:00").expect("valid"),
            heartbeat_spread_secs: 1200, // a 20-minute spread, like §5.1
            n_stale_sources: 0,
            stale_secs: 30 * 86_400,
        }
    }

    /// The sweep point this config realizes.
    pub fn sweep_point(&self) -> SweepPoint {
        SweepPoint {
            data_ratio: self.data_ratio,
            n_sources: self.total_rows / self.data_ratio,
        }
    }
}

/// A generated evaluation database.
pub struct EvalDb {
    /// The database (heartbeat + activity + routing, indexed).
    pub db: Database,
    /// `Activity` table id.
    pub activity: TableId,
    /// `Routing` table id.
    pub routing: TableId,
    /// The realized sweep point.
    pub point: SweepPoint,
}

/// Source id for index `i` (1-based): `Tao{i}`.
pub fn source_name(i: u64) -> String {
    format!("Tao{i}")
}

/// The four test queries of Section 5.2, verbatim.
///
/// Q1: very selective single-relation; Q2: its non-selective complement
/// (`NOT IN`); Q3: join with a selective predicate on `Routing`; Q4: join
/// with the non-selective complement.
pub const PAPER_QUERIES: [(&str, &str); 4] = [
    (
        "Q1",
        "SELECT COUNT(*) FROM Activity A \
         WHERE A.mach_id IN ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000') \
         AND A.value = 'idle'",
    ),
    (
        "Q2",
        "SELECT COUNT(*) FROM Activity A \
         WHERE A.mach_id NOT IN ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000') \
         AND A.value = 'idle'",
    ),
    (
        "Q3",
        "SELECT COUNT(*) FROM Routing R, Activity A \
         WHERE R.mach_id IN ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000') \
         AND R.neighbor = A.mach_id AND A.value = 'idle'",
    ),
    (
        "Q4",
        "SELECT COUNT(*) FROM Routing R, Activity A \
         WHERE R.mach_id NOT IN ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000') \
         AND R.neighbor = A.mach_id AND A.value = 'idle'",
    ),
];

/// Generates the evaluation database for `config`.
///
/// `Activity`: `total_rows` rows, `data_ratio` per source, values drawn
/// uniformly from {idle, busy}. `Routing`: one row per source, neighbor =
/// ring successor. `Heartbeat`: every source, recency spread uniformly
/// over `heartbeat_spread_secs` below `base` (+ optional stale outliers).
/// Indexes on the source columns of all three tables (as in the paper).
pub fn load_eval_db(config: &EvalConfig) -> Result<EvalDb> {
    if config.data_ratio == 0 || !config.total_rows.is_multiple_of(config.data_ratio) {
        return Err(TracError::Config(format!(
            "data_ratio {} must divide total_rows {}",
            config.data_ratio, config.total_rows
        )));
    }
    let point = config.sweep_point();
    let n = point.n_sources;
    let db = build_schema(&db_domains(n))?;
    let activity = db.begin_read().table_id("activity")?;
    let routing = db.begin_read().table_id("routing")?;
    let hb = db.begin_read().table_id(HEARTBEAT_TABLE)?;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Bulk load in one transaction; heartbeats inserted directly (one row
    // per source) rather than upserted per event.
    let txn = db.begin_write();
    let values = ["idle", "busy"];
    let mut event_t = config.base - TsDuration::from_secs(config.total_rows as i64);
    for i in 1..=n {
        let sid = source_name(i);
        for _ in 0..point.data_ratio {
            let v = values[rng.random_range(0..2)];
            txn.insert(
                activity,
                vec![
                    Value::text(sid.clone()),
                    Value::text(v),
                    Value::Timestamp(event_t),
                ],
            )?;
            event_t = event_t + TsDuration::from_secs(1);
        }
        let neighbor = source_name(i % n + 1);
        txn.insert(
            routing,
            vec![
                Value::text(sid.clone()),
                Value::text(neighbor),
                Value::Timestamp(config.base),
            ],
        )?;
        // Heartbeat recency: uniform within the spread; the first
        // `n_stale_sources` sources instead sit far in the past.
        let recency = if i <= config.n_stale_sources {
            config.base - TsDuration::from_secs(config.stale_secs)
        } else {
            config.base - TsDuration::from_secs(rng.random_range(0..=config.heartbeat_spread_secs))
        };
        txn.insert(hb, vec![Value::text(sid), Value::Timestamp(recency)])?;
    }
    txn.commit();
    Ok(EvalDb {
        db,
        activity,
        routing,
        point,
    })
}

fn db_domains(n_sources: u64) -> ColumnDomain {
    // Machine-id domain: the full Tao1..TaoN set. Materializing the set
    // is what lets the satisfiability engine and the oracle reason
    // exactly; for very large N this is a few MB, same order as the data.
    ColumnDomain::text_set((1..=n_sources).map(source_name))
}

fn build_schema(machine_domain: &ColumnDomain) -> Result<Database> {
    let db = Database::new();
    // Replace the default unbounded heartbeat sid domain with the finite
    // machine set: D_s is "the same set of data source ids that the
    // Heartbeat table records".
    db.drop_table(HEARTBEAT_TABLE)?;
    db.create_table(heartbeat::heartbeat_schema_with_domain(
        machine_domain.clone(),
    ))?;
    db.create_index(HEARTBEAT_TABLE, heartbeat::HEARTBEAT_SID_COL)?;
    db.create_table(TableSchema::new(
        "activity",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machine_domain.clone()),
            ColumnDef::new("value", DataType::Text)
                .with_domain(ColumnDomain::text_set(["idle", "busy"])),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    db.create_table(TableSchema::new(
        "routing",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machine_domain.clone()),
            ColumnDef::new("neighbor", DataType::Text).with_domain(machine_domain.clone()),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    db.create_index("activity", "mach_id")?;
    db.create_index("routing", "mach_id")?;
    Ok(db)
}

/// The sweep of Figure 1: ratios 10 → total_rows/10 by factors of 10
/// (the paper's x-axis), subject to `n_sources <= max_sources`.
pub fn figure1_sweep(total_rows: u64, max_sources: u64) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let mut ratio = 10u64;
    while ratio <= total_rows {
        let n_sources = total_rows / ratio;
        if n_sources >= 1 && n_sources <= max_sources && total_rows.is_multiple_of(ratio) {
            out.push(SweepPoint {
                data_ratio: ratio,
                n_sources,
            });
        }
        ratio *= 10;
    }
    out
}

/// Convenience: an `Arc`'d shared database for criterion benches.
pub type SharedEvalDb = Arc<EvalDb>;

#[cfg(test)]
mod tests {
    use super::*;
    use trac_exec::execute_statement;

    #[test]
    fn generates_requested_shape() {
        let cfg = EvalConfig::new(1000, 100); // 10 sources × 100 rows
        let e = load_eval_db(&cfg).unwrap();
        assert_eq!(
            e.point,
            SweepPoint {
                data_ratio: 100,
                n_sources: 10
            }
        );
        let txn = e.db.begin_read();
        assert_eq!(txn.row_count(e.activity).unwrap(), 1000);
        assert_eq!(txn.row_count(e.routing).unwrap(), 10);
        let beats = heartbeat::all_recencies(&txn).unwrap();
        assert_eq!(beats.len(), 10);
        assert!(txn.has_index(e.activity, 0));
        assert!(txn.has_index(e.routing, 0));
    }

    #[test]
    fn ring_routing_maps_set_onto_itself() {
        let cfg = EvalConfig::new(100, 10);
        let e = load_eval_db(&cfg).unwrap();
        let r = execute_statement(
            &e.db,
            "SELECT neighbor FROM Routing WHERE mach_id = 'Tao10'",
        )
        .unwrap();
        match r {
            trac_exec::StatementResult::Rows(q) => {
                assert_eq!(q.rows[0][0], Value::text("Tao1")); // ring wraps
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = EvalConfig::new(500, 50);
        let a = load_eval_db(&cfg).unwrap();
        let b = load_eval_db(&cfg).unwrap();
        let qa =
            execute_statement(&a.db, "SELECT COUNT(*) FROM Activity WHERE value = 'idle'").unwrap();
        let qb =
            execute_statement(&b.db, "SELECT COUNT(*) FROM Activity WHERE value = 'idle'").unwrap();
        assert_eq!(format!("{qa:?}"), format!("{qb:?}"));
    }

    #[test]
    fn stale_sources_sit_far_behind() {
        let mut cfg = EvalConfig::new(100, 10);
        cfg.n_stale_sources = 2;
        let e = load_eval_db(&cfg).unwrap();
        let txn = e.db.begin_read();
        let beats = heartbeat::all_recencies(&txn).unwrap();
        let stale: Vec<_> = beats
            .iter()
            .filter(|(_, t)| cfg.base - *t > TsDuration::from_secs(86_400))
            .collect();
        assert_eq!(stale.len(), 2);
    }

    #[test]
    fn rejects_non_dividing_ratio() {
        assert!(load_eval_db(&EvalConfig::new(1000, 300)).is_err());
        assert!(load_eval_db(&EvalConfig::new(1000, 0)).is_err());
    }

    #[test]
    fn figure1_sweep_shape() {
        let sweep = figure1_sweep(1_000_000, 100_000);
        assert_eq!(
            sweep[0],
            SweepPoint {
                data_ratio: 10,
                n_sources: 100_000
            }
        );
        assert_eq!(
            *sweep.last().unwrap(),
            SweepPoint {
                data_ratio: 1_000_000,
                n_sources: 1
            }
        );
        for w in &sweep {
            assert_eq!(w.data_ratio * w.n_sources, 1_000_000);
        }
    }

    #[test]
    fn paper_queries_parse_and_run() {
        let cfg = EvalConfig::new(1000, 100);
        let e = load_eval_db(&cfg).unwrap();
        for (name, sql) in PAPER_QUERIES {
            let r = execute_statement(&e.db, sql).unwrap();
            match r {
                trac_exec::StatementResult::Rows(q) => {
                    assert!(q.scalar().is_some(), "{name} must return a count");
                }
                other => panic!("{name}: {other:?}"),
            }
        }
    }
}
