//! Synthetic workloads reproducing the paper's evaluation setup
//! (Section 5.2).
//!
//! The evaluation fixes the total number of `Activity` rows and sweeps
//! the **data ratio** (rows per data source) against the **number of data
//! sources** in inverse proportion: ratio 10 → 10^6 while sources
//! 10^6 → 10, product constant. Source ids are `Tao1 … TaoN` (the paper's
//! machines ran Tao Linux, and its queries name `'Tao1','Tao10',…`).
//! `Heartbeat` holds every source; `Routing` maps each machine onto the
//! ring successor (so, as the paper assumes for its fpr computation, the
//! machine set maps onto itself); B-tree indexes sit on every data source
//! column; all columns carry finite domains so the brute-force oracle can
//! compute exact relevant sets.

#![warn(missing_docs)]

pub mod eval;
pub mod samples;

pub use eval::{load_eval_db, EvalConfig, EvalDb, SweepPoint, PAPER_QUERIES};
pub use samples::{load_paper_tables, load_section_42_tables};
