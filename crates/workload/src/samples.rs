//! The paper's worked-example data sets.
//!
//! [`load_paper_tables`] builds Tables 1 and 2 exactly as printed
//! (Activity: m1 idle / m2 busy / m3 idle; Routing: m1→m3, m2→m3), and
//! [`load_section_42_tables`] builds the `S`/`R` job-state schema of the
//! query-semantics discussion in Section 4.2.

use trac_storage::{ColumnDef, Database, TableId, TableSchema};
use trac_types::{ColumnDomain, DataType, Result, SourceId, Timestamp, Value};

/// Handle to the Tables-1-and-2 sample database.
pub struct PaperTables {
    /// The database.
    pub db: Database,
    /// `Activity` (Table 1).
    pub activity: TableId,
    /// `Routing` (Table 2).
    pub routing: TableId,
}

/// Builds the paper's Table 1 + Table 2 sample instance with machine
/// domain {m1, m2, m3}, indexes on the source columns, and heartbeats
/// driven by the printed event timestamps.
pub fn load_paper_tables() -> Result<PaperTables> {
    let db = Database::new();
    let machines = ColumnDomain::text_set(["m1", "m2", "m3"]);
    let activity = db.create_table(TableSchema::new(
        "activity",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
            ColumnDef::new("value", DataType::Text)
                .with_domain(ColumnDomain::text_set(["idle", "busy"])),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    let routing = db.create_table(TableSchema::new(
        "routing",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
            ColumnDef::new("neighbor", DataType::Text).with_domain(machines),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    db.create_index("activity", "mach_id")?;
    db.create_index("routing", "mach_id")?;
    db.with_write(|w| {
        // Table 1 (the paper prints the dates as 03/11/2006 etc.).
        for (m, v, t) in [
            ("m1", "idle", "2006-03-11 20:37:46"),
            ("m2", "busy", "2006-02-10 18:22:01"),
            ("m3", "idle", "2006-03-12 10:23:05"),
        ] {
            let ts = Timestamp::parse(t)?;
            w.ingest(
                &SourceId::new(m),
                activity,
                vec![Value::text(m), Value::text(v), Value::Timestamp(ts)],
                ts,
            )?;
        }
        // Table 2.
        for (m, n, t) in [
            ("m1", "m3", "2006-03-12 23:20:06"),
            ("m2", "m3", "2006-02-10 03:34:21"),
        ] {
            let ts = Timestamp::parse(t)?;
            w.ingest(
                &SourceId::new(m),
                routing,
                vec![Value::text(m), Value::text(n), Value::Timestamp(ts)],
                ts,
            )?;
        }
        Ok(())
    })?;
    Ok(PaperTables {
        db,
        activity,
        routing,
    })
}

/// Handle to the Section 4.2 `S`/`R` schema.
pub struct Section42Tables {
    /// The database.
    pub db: Database,
    /// `S(schedMachineId, jobId, remoteMachineId)`.
    pub s: TableId,
    /// `R(runningMachineId, jobId)`.
    pub r: TableId,
}

/// Builds the Section 4.2 job-state schema (empty instances) over the
/// machine domain given; heartbeats are registered for every machine.
pub fn load_section_42_tables(machines: &[&str]) -> Result<Section42Tables> {
    let db = Database::new();
    let dom = ColumnDomain::text_set(machines.iter().copied());
    let s = db.create_table(TableSchema::new(
        "s",
        vec![
            ColumnDef::new("schedmachineid", DataType::Text).with_domain(dom.clone()),
            ColumnDef::new("jobid", DataType::Int)
                .with_domain(ColumnDomain::IntRange { lo: 1, hi: 1000 }),
            ColumnDef::new("remotemachineid", DataType::Text)
                .with_domain(dom.clone())
                .nullable(),
        ],
        Some("schedmachineid"),
    )?)?;
    let r = db.create_table(TableSchema::new(
        "r",
        vec![
            ColumnDef::new("runningmachineid", DataType::Text).with_domain(dom),
            ColumnDef::new("jobid", DataType::Int)
                .with_domain(ColumnDomain::IntRange { lo: 1, hi: 1000 }),
        ],
        Some("runningmachineid"),
    )?)?;
    db.create_index("s", "schedmachineid")?;
    db.create_index("s", "jobid")?;
    db.create_index("r", "runningmachineid")?;
    db.create_index("r", "jobid")?;
    db.with_write(|w| {
        for m in machines {
            w.heartbeat(&SourceId::new(*m), Timestamp::parse("2006-03-15 12:00:00")?)?;
        }
        Ok(())
    })?;
    Ok(Section42Tables { db, s, r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trac_exec::execute_sql;

    #[test]
    fn table1_contents_match_paper() {
        let t = load_paper_tables().unwrap();
        let txn = t.db.begin_read();
        let rows =
            execute_sql(&txn, "SELECT mach_id, value FROM Activity ORDER BY mach_id").unwrap();
        assert_eq!(
            rows.rows,
            vec![
                vec![Value::text("m1"), Value::text("idle")],
                vec![Value::text("m2"), Value::text("busy")],
                vec![Value::text("m3"), Value::text("idle")],
            ]
        );
    }

    #[test]
    fn table2_contents_match_paper() {
        let t = load_paper_tables().unwrap();
        let txn = t.db.begin_read();
        let rows = execute_sql(
            &txn,
            "SELECT mach_id, neighbor FROM Routing ORDER BY mach_id",
        )
        .unwrap();
        assert_eq!(
            rows.rows,
            vec![
                vec![Value::text("m1"), Value::text("m3")],
                vec![Value::text("m2"), Value::text("m3")],
            ]
        );
    }

    #[test]
    fn section42_schema_installs() {
        let t = load_section_42_tables(&["myScheduler", "mx", "my"]).unwrap();
        let txn = t.db.begin_read();
        assert_eq!(txn.row_count(t.s).unwrap(), 0);
        assert_eq!(txn.row_count(t.r).unwrap(), 0);
        let beats = trac_storage::heartbeat::all_recencies(&txn).unwrap();
        assert_eq!(beats.len(), 3);
    }
}
