//! Live grid monitoring: a simulated Condor-style pool feeding the
//! database through laggy sniffers, queried with recency reports.
//!
//! Shows the paper's motivating story end to end: an administrator asks
//! questions while the pool runs; answers come back with exactly the
//! staleness context needed to interpret them — including a crashed
//! machine surfacing as an exceptional source, and the four
//! partially-reported states of a routed job (Section 1's m1/m2 example).
//!
//! ```sh
//! cargo run --example grid_monitoring
//! ```

use trac::core::Session;
use trac::grid::{GridConfig, GridSim};
use trac::types::{Result, TsDuration};

fn ask(session: &Session, label: &str, sql: &str) -> Result<()> {
    let out = session.recency_report(sql)?;
    println!("== {label}");
    println!("   {sql}");
    println!("{}", out.result);
    println!(
        "   relevant: {} normal + {} exceptional ({}); bound of inconsistency: {}",
        out.report.normal.len(),
        out.report.exceptional.len(),
        out.report.guarantee,
        out.report
            .inconsistency_bound
            .map_or("n/a".into(), |d| d.to_string()),
    );
    for (s, t) in &out.report.exceptional {
        println!("   EXCEPTIONAL source {s}: last heard {t}");
    }
    println!();
    Ok(())
}

fn main() -> Result<()> {
    // A 12-machine pool, 3 schedulers, one machine failing hard partway
    // through (long outage → its sniffer goes silent).
    let mut sim = GridSim::new(GridConfig {
        n_machines: 12,
        n_schedulers: 3,
        arrival_secs: 20,
        service_secs: (30, 180),
        sniffer_lag_secs: (5, 120),
        sniffer_period_secs: 10,
        heartbeat_secs: 45,
        mtbf_secs: 7200,
        outage_secs: 2700,
        ..Default::default()
    })?;

    // Let the pool run for two simulated hours.
    sim.run_for(7200)?;
    println!(
        "simulated 2h: clock = {}, jobs completed = {}",
        sim.clock(),
        sim.jobs_completed()
    );
    for (i, id) in sim.machine_ids().iter().enumerate() {
        println!(
            "  {id}: state {:?}, sniffer backlog {} records",
            sim.machine_state(i),
            sim.backlog(i)
        );
    }
    println!();

    let session = Session::new(sim.db().clone());

    ask(
        &session,
        "Which machines are reporting idle right now?",
        "SELECT mach_id FROM activity WHERE value = 'idle' ORDER BY mach_id",
    )?;

    ask(
        &session,
        "What does machine g5 think it is doing? (query-centric recency: \
         only g5 is relevant)",
        "SELECT mach_id, value, event_time FROM activity WHERE mach_id = 'g5'",
    )?;

    ask(
        &session,
        "Scheduler view vs execute view of in-flight jobs (S join R)",
        "SELECT S.schedmachineid, S.jobid, R.runningmachineid FROM sched S, running R \
         WHERE S.jobid = R.jobid AND S.remotemachineid = R.runningmachineid \
         ORDER BY S.jobid LIMIT 10",
    )?;

    // The paper's opening example question: "how many CPU seconds have my
    // jobs used?" — the answer depends on which machines have reported in,
    // which is precisely what the accompanying recency report conveys.
    ask(
        &session,
        "CPU seconds consumed, per machine (the intro's motivating query)",
        "SELECT mach_id, SUM(cpu_secs) AS cpu, COUNT(*) AS jobs FROM job_events \
         WHERE event = 'completed' GROUP BY mach_id ORDER BY mach_id",
    )?;

    // The Section-1 inconsistency, measured: jobs the scheduler routed
    // that the execute machine hasn't (visibly) started, and jobs running
    // with no visible routing record. Both are normal operation here.
    let txn = sim.db().clone();
    let orphan_routed =
        session.query("SELECT COUNT(*) FROM sched S WHERE S.remotemachineid IS NOT NULL")?;
    let running = session.query("SELECT COUNT(*) FROM running")?;
    println!(
        "scheduler-side assignments visible: {}, execute-side running rows visible: {} \
         — they rarely agree, and that is the point.",
        orphan_routed.scalar().unwrap(),
        running.scalar().unwrap()
    );
    drop(txn);

    // Advance and flush everything to show convergence when sniffers
    // catch up (modulo the failed machine).
    sim.run_for(600)?;
    sim.pump_all()?;
    println!();
    ask(
        &session,
        "After a flush: staleness collapses to the failed machine(s)",
        "SELECT mach_id FROM activity WHERE value = 'busy' ORDER BY mach_id",
    )?;

    // How stale can the worst source be?
    let out = session.recency_report("SELECT mach_id FROM activity")?;
    let worst = out
        .report
        .normal
        .iter()
        .chain(&out.report.exceptional)
        .min_by_key(|(_, t)| *t)
        .expect("some source");
    let staleness: TsDuration = sim.clock() - worst.1;
    println!(
        "least recent source overall: {} ({} behind the simulation clock)",
        worst.0, staleness
    );
    Ok(())
}
