//! Section 4.2: how query phrasing changes both semantics *and* recency.
//!
//! A user asks "is my job (id 1), submitted to myScheduler, running yet?"
//! Two phrasings — `Q3` (look only in `R`) and `Q4` (join `S` and `R`) —
//! get very different recency reports, and `Q4`'s focused report walks
//! through the paper's three cases:
//!
//! (a) nothing in `S` for the job    → only {myScheduler} is relevant;
//! (b) `S` row exists, no `R` match  → {myScheduler, remoteMachine};
//! (c) `S` row joins an `R` row      → {myScheduler, runningMachine}.
//!
//! One realistic wrinkle sets the stage: machine `my` *stale-reported*
//! job 1 a while ago (the kind of conflicting view this system tolerates
//! by design), so `R` is never empty for the job — exactly the situation
//! the paper's case analysis describes.
//!
//! ```sh
//! cargo run --example job_status
//! ```

use trac::core::Session;
use trac::exec::execute_statement;
use trac::types::Result;
use trac::workload::load_section_42_tables;

const Q3: &str = "SELECT R.runningMachineId FROM R WHERE R.jobId = 1";
const Q4: &str = "SELECT R.runningMachineId FROM S, R \
                  WHERE S.schedMachineId = 'myScheduler' AND S.jobId = 1 \
                  AND R.jobId = 1 AND R.runningMachineId = S.remoteMachineId";

fn report(session: &Session, label: &str, sql: &str) -> Result<Vec<String>> {
    let out = session.recency_report(sql)?;
    let relevant: Vec<String> = out
        .report
        .normal
        .iter()
        .chain(&out.report.exceptional)
        .map(|(s, _)| s.to_string())
        .collect();
    println!(
        "{label}\n   result rows: {}   relevant sources ({}): {:?}",
        out.result.len(),
        out.report.guarantee,
        relevant
    );
    for sql in &out.generated_sql {
        if !sql.starts_with("--") {
            println!("   recency query: {sql}");
        }
    }
    println!();
    Ok(relevant)
}

fn main() -> Result<()> {
    // Machines: the scheduler plus two potential execute machines.
    let t = load_section_42_tables(&["myScheduler", "mx", "my"])?;
    let session = Session::new(t.db.clone());
    // The stale conflicting report: `my` thinks it ran job 1 at some
    // point. S and R "are supposed to capture the current state, but they
    // can allow inconsistencies due to time lags" (Section 4.2).
    execute_statement(&t.db, "INSERT INTO R VALUES ('my', 1)")?;

    println!("--- case (a): nothing in S for job 1 ---");
    report(&session, "Q3 (R only): every machine could matter", Q3)?;
    let r = report(
        &session,
        "Q4 (S join R): only myScheduler can change this",
        Q4,
    )?;
    assert_eq!(r, vec!["myScheduler"]);

    println!("--- case (b): scheduler assigned job 1 to mx; mx hasn't reported ---");
    execute_statement(&t.db, "INSERT INTO S VALUES ('myScheduler', 1, 'mx')")?;
    report(&session, "Q3: still every machine", Q3)?;
    let r = report(&session, "Q4: watch myScheduler and mx", Q4)?;
    assert_eq!(r, vec!["mx", "myScheduler"]);

    println!("--- case (c): mx reports it is running job 1 ---");
    execute_statement(&t.db, "INSERT INTO R VALUES ('mx', 1)")?;
    report(
        &session,
        "Q3: answer found, but all sources were relevant",
        Q3,
    )?;
    let r = report(
        &session,
        "Q4: answer found; relevant = {myScheduler, mx}",
        Q4,
    )?;
    assert_eq!(r, vec!["mx", "myScheduler"]);

    println!(
        "Takeaway (Section 4.2): Q3 answers from R alone — any machine's update \
         could change it, so the report must cover everyone. Q4 pins the job to \
         its scheduler, so TRAC can tell the user precisely whose staleness to \
         worry about. Same question, different semantics, different recency."
    );
    Ok(())
}
