//! Reproduces the prototype session of Section 5.1: eleven machines, one
//! of them (m2) a month stale, a user asking who reported "idle".
//!
//! The output mirrors the paper's psql transcript: the exceptional
//! relevant source lands in a `sys_temp_e…` table, the ten normal ones in
//! `sys_temp_a…`, the least/most recent sources are m1 and m3, and the
//! bound of inconsistency is exactly `00:20:00`.
//!
//! ```sh
//! cargo run --example outlier_detection
//! ```

use trac::core::Session;
use trac::storage::{ColumnDef, Database, TableSchema};
use trac::types::{ColumnDomain, DataType, Result, SourceId, Timestamp, TsDuration, Value};

fn main() -> Result<()> {
    let db = Database::new();
    let machines: Vec<String> = (1..=11).map(|i| format!("m{i}")).collect();
    db.create_table(TableSchema::new(
        "activity",
        vec![
            ColumnDef::new("mach_id", DataType::Text)
                .with_domain(ColumnDomain::text_set(machines.clone())),
            ColumnDef::new("value", DataType::Text)
                .with_domain(ColumnDomain::text_set(["idle", "busy"])),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    db.create_index("activity", "mach_id")?;
    let activity = db.begin_read().table_id("activity")?;

    // Recency timestamps straight from the paper's transcript:
    // m1 at 14:20:05, m3 at 14:40:05, m4..m11 in between, and m2 a month
    // stale (2006-02-12 17:23:00).
    let base = Timestamp::parse("2006-03-15 14:20:05")?;
    db.with_write(|w| {
        let ingest = |m: &str, v: &str, ts: Timestamp| {
            w.ingest(
                &SourceId::new(m),
                activity,
                vec![Value::text(m), Value::text(v), Value::Timestamp(ts)],
                ts,
            )
        };
        ingest("m1", "idle", base)?;
        ingest("m2", "busy", Timestamp::parse("2006-02-12 17:23:00")?)?;
        ingest("m3", "idle", Timestamp::parse("2006-03-15 14:40:05")?)?;
        for i in 4..=11 {
            ingest(
                &format!("m{i}"),
                "busy",
                base + TsDuration::from_mins(i - 3),
            )?;
        }
        Ok(())
    })?;

    let session = Session::new(db);
    let out =
        session.recency_report("SELECT mach_id, value FROM Activity A WHERE value = 'idle'")?;

    // The paper's transcript, reconstructed.
    println!("mydb=# SELECT * FROM recencyReport($$");
    println!("mydb-#   SELECT mach_id, value FROM Activity A");
    println!("mydb-#   WHERE value = 'idle'$$)");
    println!("mydb-#   AS t(mach_id TEXT, activity TEXT);");
    println!("{}", out.render());
    println!();
    println!("-- query the exceptional relevant data sources");
    println!("mydb=# SELECT * FROM {};", out.exceptional_table);
    println!(
        "{}",
        session.query(&format!(
            "SELECT sid, recency FROM {} ORDER BY sid",
            out.exceptional_table
        ))?
    );
    println!();
    println!("-- query the ''normal'' relevant data sources");
    println!("mydb=# SELECT * FROM {};", out.normal_table);
    println!(
        "{}",
        session.query(&format!(
            "SELECT sid, recency FROM {} ORDER BY sid",
            out.normal_table
        ))?
    );

    // Sanity: the three headline numbers of the paper's transcript.
    assert_eq!(out.report.exceptional.len(), 1);
    assert_eq!(out.report.exceptional[0].0.as_str(), "m2");
    assert_eq!(out.report.least_recent.as_ref().unwrap().0.as_str(), "m1");
    assert_eq!(out.report.most_recent.as_ref().unwrap().0.as_str(), "m3");
    assert_eq!(
        out.report.inconsistency_bound.unwrap(),
        TsDuration::from_mins(20),
        "Bound of inconsistency: 00:20:00"
    );
    Ok(())
}
