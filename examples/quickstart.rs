//! Quickstart: monitor three machines, ask a question, read the recency
//! report that comes back with the answer.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use trac::core::Session;
use trac::storage::{ColumnDef, Database, TableSchema};
use trac::types::{ColumnDomain, DataType, Result, SourceId, Timestamp, Value};

fn main() -> Result<()> {
    // 1. A database. The system Heartbeat table (one recency timestamp
    //    per data source) is created automatically.
    let db = Database::new();

    // 2. A monitored relation. Every tuple is tagged with the data source
    //    that produced it — here the machine id — declared via the
    //    SOURCE COLUMN designation.
    db.create_table(TableSchema::new(
        "activity",
        vec![
            ColumnDef::new("mach_id", DataType::Text)
                .with_domain(ColumnDomain::text_set(["m1", "m2", "m3"])),
            ColumnDef::new("value", DataType::Text)
                .with_domain(ColumnDomain::text_set(["idle", "busy"])),
            ColumnDef::new("event_time", DataType::Timestamp),
        ],
        Some("mach_id"),
    )?)?;
    db.create_index("activity", "mach_id")?;

    // 3. Updates stream in from the sources, each advancing its source's
    //    recency timestamp. m2 reported a month ago and has been silent
    //    since — exactly the situation TRAC reports instead of hiding.
    let activity = db.begin_read().table_id("activity")?;
    db.with_write(|w| {
        for (m, v, t) in [
            ("m1", "idle", "2006-03-15 14:20:05"),
            ("m2", "busy", "2006-02-12 17:23:00"),
            ("m3", "idle", "2006-03-15 14:40:05"),
        ] {
            let ts = Timestamp::parse(t)?;
            w.ingest(
                &SourceId::new(m),
                activity,
                vec![Value::text(m), Value::text(v), Value::Timestamp(ts)],
                ts,
            )?;
        }
        Ok(())
    })?;

    // 4. Ask a question through a TRAC session. The recency report comes
    //    back with the result, computed against the same snapshot.
    let session = Session::new(db);
    let out = session.recency_report("SELECT mach_id, value FROM activity WHERE value = 'idle'")?;

    println!("{}", out.render());
    println!();
    println!(
        "generated recency quer{}:",
        if out.generated_sql.len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    for sql in &out.generated_sql {
        println!("  {sql}");
    }
    println!();
    println!(
        "relevant sources: {} normal, {} exceptional ({})",
        out.report.normal.len(),
        out.report.exceptional.len(),
        out.report.guarantee
    );
    // The detail outlives this call — it sits in session temp tables:
    let detail = session.query(&format!(
        "SELECT sid, recency FROM {} ORDER BY sid",
        out.normal_table
    ))?;
    println!("\ncontents of {}:\n{detail}", out.normal_table);
    Ok(())
}
