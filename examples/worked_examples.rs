//! The paper's worked examples, end to end (Sections 3.4 and 4.1).
//!
//! * Table 1 / Table 2 sample instances;
//! * `Q_1` (single relation): relevant sources = {m1, m2} by Theorem 3;
//! * `Q_2` (join): `S(Q2, R) = {m1}` and `S(Q2, A) = {m3}` via the
//!   generated semijoins of Theorem 4 / Corollary 5;
//! * the all-busy variant where a *sequence* of updates from an
//!   irrelevant source changes the answer (Section 4.1.2's closing
//!   observation).
//!
//! ```sh
//! cargo run --example worked_examples
//! ```

use trac::core::oracle::relevant_sources_oracle;
use trac::core::{RecencyPlan, RelevanceConfig};
use trac::exec::{execute_sql, execute_statement};
use trac::expr::bind_select;
use trac::sql::parse_select;
use trac::types::Result;
use trac::workload::load_paper_tables;

fn show(db: &trac::storage::Database, label: &str, sql: &str) -> Result<()> {
    println!("== {label}\n   {sql}");
    let txn = db.begin_read();
    let stmt = parse_select(sql)?;
    let bound = bind_select(&txn, &stmt)?;
    let result = execute_sql(&txn, sql)?;
    println!("{result}");
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default())?;
    for sub in &plan.subqueries {
        println!(
            "   S(Q, {}) [{:?}]: {}",
            sub.via_relation, sub.status, sub.sql
        );
    }
    let computed = plan.execute(&txn)?;
    let truth = relevant_sources_oracle(&txn, &bound, 50_000_000)?;
    println!(
        "   relevant sources (generated queries): {:?}  guarantee: {}",
        computed
            .iter()
            .map(trac::types::SourceId::as_str)
            .collect::<Vec<_>>(),
        plan.guarantee
    );
    println!(
        "   relevant sources (brute-force truth): {:?}",
        truth
            .iter()
            .map(trac::types::SourceId::as_str)
            .collect::<Vec<_>>()
    );
    assert!(computed.is_superset(&truth), "completeness must hold");
    println!();
    Ok(())
}

fn main() -> Result<()> {
    let tables = load_paper_tables()?;
    let db = &tables.db;

    println!("Table 1 (Activity):");
    println!(
        "{}\n",
        execute_sql(&db.begin_read(), "SELECT * FROM Activity ORDER BY mach_id")?
    );
    println!("Table 2 (Routing):");
    println!(
        "{}\n",
        execute_sql(&db.begin_read(), "SELECT * FROM Routing ORDER BY mach_id")?
    );

    // Q1 of Section 4.1.1: which of m1, m2 reported idle?
    show(
        db,
        "Q1 (Theorem 3: minimum = {m1, m2})",
        "SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'",
    )?;

    // Q2 of Section 4.1.2: which neighbors of m1 reported idle?
    show(
        db,
        "Q2 (Theorem 4 via A; Corollary 5 via R): S = {m1} ∪ {m3}",
        "SELECT A.mach_id FROM Routing R, Activity A \
         WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id",
    )?;

    // Section 4.1.2's closing scenario: make all machines busy. Now no
    // single update from m1 or m2 can change Q2's result …
    execute_statement(db, "UPDATE Activity SET value = 'busy'")?;
    show(
        db,
        "Q2 with every machine busy: S(Q2,R) = {}, S(Q2,A) = {m3}",
        "SELECT A.mach_id FROM Routing R, Activity A \
         WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id",
    )?;

    // … but a *sequence* of updates from (irrelevant) m1 can: first m1
    // turns idle — which makes m1 relevant via Routing — then m1 adds
    // itself as its own neighbor, changing the query result.
    execute_statement(
        db,
        "UPDATE Activity SET value = 'idle' WHERE mach_id = 'm1'",
    )?;
    execute_statement(
        db,
        "INSERT INTO Routing VALUES ('m1', 'm1', TIMESTAMP '2006-03-13 00:00:00')",
    )?;
    show(
        db,
        "Q2 after m1's two updates: the result now includes m1",
        "SELECT A.mach_id FROM Routing R, Activity A \
         WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id",
    )?;
    println!(
        "Note: the paper points out this sequence is impossible if the schema \
         forbids self-neighbors — constraints tighten relevance (future work in §3.4)."
    );
    Ok(())
}
