#!/usr/bin/env bash
# The full CI gate, runnable locally (same sequence as .github/workflows/ci.yml):
# formatting, the workspace lint wall, all tests, and the soundness
# analyzer over every sample workload.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace lint wall)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> trac-analyze (soundness audit of sample workloads, incl. planned recency subqueries)"
cargo run --release -p trac-analyze --bin trac-analyze

echo "==> trac-analyze --format json (diagnostic sweep vs committed baseline)"
# Any new diagnostic — even a note — must be acknowledged by updating the
# baseline, so silent regressions in the certified sweep cannot land.
cargo run --release -q -p trac-analyze --bin trac-analyze -- --format json \
  | diff -u scripts/analyzer_baseline.json - \
  || { echo "analyzer sweep diverged from scripts/analyzer_baseline.json"; exit 1; }

echo "All checks passed."
