#!/usr/bin/env bash
# The full CI gate, runnable locally (same sequence as .github/workflows/ci.yml):
# formatting, the workspace lint wall, all tests, and the soundness
# analyzer over every sample workload.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace lint wall)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> differential suite, single-threaded test runner (ordering flakes)"
# The parallel-vs-serial differential asserts byte-identical rows; run it
# once with a serialized test runner so a scheduling-dependent flake
# cannot hide behind concurrent test execution.
cargo test -q --test differential -- --test-threads=1

echo "==> interleaving explorer, single-threaded test runner (bounded budget)"
# The deterministic schedule explorer proves parallel output byte-identical
# to serial and cache soundness across bounded interleavings at threads
# {2,4} (fixed seeds + capped exhaustive enumeration, so the job is
# time-bounded and reproducible on a 1-CPU host).
timeout 600 cargo test -q --test interleavings -- --test-threads=1

echo "==> figure1 smoke at --threads 4 (tiny config)"
# Exercises the morsel-driven parallel path end to end (Exchange/Gather
# lowering, plan certification, JSON emission) at a scale CI can afford.
BENCH_SMOKE_DIR="$(mktemp -d)"
cargo run --release -q -p trac-bench --bin figure1 -- \
  --total-rows 2000 --max-sources 100 --runs 2 --warmup 1 \
  --threads 4 --batch-size 64 --json-out "$BENCH_SMOKE_DIR/BENCH_figure1.json"
cargo run --release -q -p trac-bench --bin figure2 -- \
  --total-rows 2000 --max-sources 100 --runs 2 --warmup 1 \
  --threads 4 --batch-size 64 --json-out "$BENCH_SMOKE_DIR/BENCH_figure2.json"

echo "==> delta-maintenance smoke, serial (tiny config)"
# Exercises the change-then-report loop end to end: heartbeat upserts
# publish to the typed change stream, the maintained session folds them
# (the bin asserts it actually served delta-folded reports), and the
# rescan reference recomputes. Serial, so it also covers threads=1.
cargo run --release -q -p trac-bench --bin delta -- \
  --sources 100 --ratio 10 --scales 2 --changes 16 --runs 2 --warmup 1 \
  --json-out "$BENCH_SMOKE_DIR/BENCH_delta.json"

echo "==> BENCH_*.json schema vs committed scripts/bench_schema.json"
# The perf-trajectory files are diffed across commits; their key-path
# schema is a reviewed contract, not an implementation detail.
cargo run --release -q -p trac-bench --bin bench_schema -- \
  "$BENCH_SMOKE_DIR/BENCH_delta.json" \
  "$BENCH_SMOKE_DIR/BENCH_figure1.json" "$BENCH_SMOKE_DIR/BENCH_figure2.json" \
  | diff -u scripts/bench_schema.json - \
  || { echo "bench JSON schema diverged from scripts/bench_schema.json"; exit 1; }
rm -rf "$BENCH_SMOKE_DIR"

echo "==> trac-analyze --typeflow (soundness audit of sample workloads, incl. planned recency subqueries)"
cargo run --release -p trac-analyze --bin trac-analyze -- --typeflow

echo "==> trac-analyze --typeflow --format json (diagnostic sweep vs committed baseline)"
# Any new diagnostic — even a note — must be acknowledged by updating the
# baseline, so silent regressions in the certified sweep cannot land.
# --typeflow folds the lane-certificate proofs (TRAC023-026) into each
# query's diagnostics and appends the panic-path audit (TRAC027).
cargo run --release -q -p trac-analyze --bin trac-analyze -- --typeflow --format json \
  | diff -u scripts/analyzer_baseline.json - \
  || { echo "analyzer sweep diverged from scripts/analyzer_baseline.json"; exit 1; }

echo "All checks passed."
