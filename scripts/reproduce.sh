#!/usr/bin/env bash
# Regenerates every artifact of the TRAC reproduction:
#   - full test suite          -> test_output.txt
#   - criterion micro-benches  -> bench_output.txt
#   - Figure 1 / Figure 2      -> results_figure1.txt / results_figure2.txt
#   - fpr table                -> results_fpr.txt
#   - ablations                -> results_ablation.txt
#
# Usage: scripts/reproduce.sh [TOTAL_ROWS] [RUNS] [THREADS]
#   TOTAL_ROWS defaults to 1000000 (paper scale: 10000000)
#   RUNS       defaults to 3       (paper: 10 after 1 warmup)
#   THREADS    defaults to 1       (serial; see DESIGN.md §4d)
#
# figure1/figure2 additionally refresh the committed perf trajectory
# (BENCH_figure1.json / BENCH_figure2.json at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

TOTAL_ROWS="${1:-1000000}"
RUNS="${2:-3}"
THREADS="${3:-1}"

echo "== tests"
cargo test --workspace 2>&1 | tee test_output.txt | tail -3

echo "== criterion benches"
cargo bench --workspace 2>&1 | tee bench_output.txt | grep -c 'time:' || true

echo "== figure 1 (total_rows=$TOTAL_ROWS, runs=$RUNS, threads=$THREADS)"
cargo run --release -p trac-bench --bin figure1 -- \
  --total-rows "$TOTAL_ROWS" --runs "$RUNS" --threads "$THREADS" \
  | tee results_figure1.txt

echo "== figure 2"
cargo run --release -p trac-bench --bin figure2 -- \
  --total-rows "$TOTAL_ROWS" --runs "$RUNS" --threads "$THREADS" \
  | tee results_figure2.txt

echo "== fpr table (exact, oracle-feasible scale)"
cargo run --release -p trac-bench --bin fpr_table -- \
  --sources 100 --ratio 10 | tee results_fpr.txt

echo "== ablations"
cargo run --release -p trac-bench --bin ablation -- \
  --total-rows 100000 | tee results_ablation.txt

echo "done. See EXPERIMENTS.md for the paper-vs-measured comparison."
