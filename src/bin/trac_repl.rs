//! An interactive TRAC shell, mirroring the paper's psql sessions.
//!
//! ```sh
//! cargo run --bin trac-repl
//! trac=# \demo
//! trac=# \report SELECT mach_id, value FROM Activity WHERE value = 'idle'
//! ```
//!
//! Plain SQL statements run directly; `\report` wraps a SELECT in the
//! recencyReport machinery of Section 5.1. Also scriptable: pipe a file
//! of commands in.

use std::io::{BufRead, IsTerminal, Write};
use trac::core::{Method, Session};
use trac::exec::{execute_statement, StatementResult};
use trac::storage::Database;
use trac::types::TracError;
use trac::workload::load_paper_tables;

const HELP: &str = "\
Commands:
  <sql>;            run a SQL statement (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP)
  EXPLAIN <select>  show the physical operator tree, annotated with the
                    dataflow facts the analyzer certified per operator
  \\report <select>  run a SELECT with Focused recency & consistency reporting
  \\naive <select>   run a SELECT with Naive (all-sources) reporting
  \\plan <select>    show the generated recency queries, their guarantee, and
                    how repeated reports are maintained (delta-fold vs rescan)
  \\tables           list tables
  \\vacuum           reclaim dead row versions
  \\demo             load the paper's Table 1 (Activity) and Table 2 (Routing)
  \\save <file>      write a snapshot of the committed state
  \\load <file>      replace the database with a snapshot
  \\help             this help
  \\quit             exit";

fn main() {
    // Analyzer-backed plan validation: EXPLAIN output gains per-operator
    // fact annotations, and (debug builds) every plan is certified
    // against its bound query before the operators run.
    trac::install_plan_validation();
    let mut db = Database::new();
    let mut session = Session::new(db.clone());
    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!("TRAC shell — recency & consistency reporting (VLDB 2006 reproduction)");
        println!("Type \\help for commands, \\demo for the paper's sample data.");
    }
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("trac=# ");
            let _ = std::io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        if !interactive {
            println!("trac=# {line}");
        }
        match run_line(&mut db, &mut session, line) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => println!("ERROR: {e}"),
        }
    }
}

/// Executes one input line; `Ok(true)` means quit.
fn run_line(db: &mut Database, session: &mut Session, line: &str) -> Result<bool, TracError> {
    if let Some(rest) = line.strip_prefix('\\') {
        let (cmd, arg) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest.trim(), ""),
        };
        match cmd {
            "q" | "quit" | "exit" => return Ok(true),
            "help" | "h" | "?" => println!("{HELP}"),
            "tables" => {
                for t in db.begin_read().table_names() {
                    println!("  {t}");
                }
            }
            "vacuum" => {
                let stats = db.vacuum()?;
                println!(
                    "vacuumed {} tables: removed {} versions, kept {}",
                    stats.tables, stats.versions_removed, stats.versions_kept
                );
            }
            "save" => {
                if arg.is_empty() {
                    return Err(TracError::Parse("\\save needs a file path".into()));
                }
                trac::save_database(db, arg)?;
                println!("snapshot written to {arg}");
            }
            "load" => {
                if arg.is_empty() {
                    return Err(TracError::Parse("\\load needs a file path".into()));
                }
                *db = trac::load_database(arg)?;
                *session = Session::new(db.clone());
                println!("snapshot loaded from {arg}");
            }
            "demo" => {
                let tables = load_paper_tables()?;
                *db = tables.db;
                *session = Session::new(db.clone());
                println!("loaded Activity (Table 1) and Routing (Table 2); try:");
                println!(
                    "  \\report SELECT mach_id FROM Activity WHERE mach_id IN ('m1','m2') \
                     AND value = 'idle'"
                );
            }
            "report" | "naive" => {
                if arg.is_empty() {
                    return Err(TracError::Parse(format!("\\{cmd} needs a SELECT")));
                }
                let method = if cmd == "naive" {
                    Method::Naive
                } else {
                    Method::Focused
                };
                let out = session.recency_report_with(arg, method)?;
                println!("{}", out.render());
                if method == Method::Focused {
                    for sql in &out.generated_sql {
                        println!("-- recency query: {sql}");
                    }
                }
                let t = out.timings;
                println!(
                    "-- timings: analyze {:?}, user query {:?}, relevance {:?}, stats {:?}",
                    t.analyze, t.user_query, t.relevance_query, t.stats
                );
            }
            "plan" => {
                if arg.is_empty() {
                    return Err(TracError::Parse("\\plan needs a SELECT".into()));
                }
                let plan = session.build_plan(arg)?;
                println!(
                    "guarantee: {}{}",
                    plan.guarantee,
                    if plan.all_sources {
                        " (DNF budget exceeded: all sources)"
                    } else {
                        ""
                    }
                );
                for sub in &plan.subqueries {
                    println!(
                        "  disjunct {} via {} [{:?}{}]: {}",
                        sub.disjunct,
                        sub.via_relation,
                        sub.status,
                        if sub.refined { ", refined" } else { "" },
                        sub.sql
                    );
                    println!("    {}", sub.maintenance.marker());
                }
            }
            other => {
                return Err(TracError::Parse(format!(
                    "unknown command \\{other}; try \\help"
                )))
            }
        }
        return Ok(false);
    }
    // Plain SQL.
    match execute_statement(db, line)? {
        StatementResult::Rows(q) => println!("{q}"),
        StatementResult::Affected(n) => println!("OK, {n} row(s) affected"),
        StatementResult::Done => println!("OK"),
    }
    Ok(false)
}
