//! TRAC umbrella crate: re-exports the public API of every subsystem and
//! provides a few conveniences that need more than one layer at once.

pub use trac_analyze as analyze;
pub use trac_core as core;
pub use trac_exec as exec;
pub use trac_expr as expr;
pub use trac_grid as grid;
pub use trac_plan as plan;
pub use trac_sql as sql;
pub use trac_storage as storage;
pub use trac_types as types;
pub use trac_workload as workload;

use std::path::Path;
use trac_types::Result;

/// Wires the analyzer into the executor: installs the translation
/// validator (debug builds certify every physical plan just before
/// execution) and the EXPLAIN annotator (operator trees render with the
/// dataflow facts the analyzer certified). The executor cannot depend on
/// the analyzer directly — this umbrella crate closes the loop. Safe to
/// call more than once; the first installation wins process-wide.
pub fn install_plan_validation() {
    fn check(q: &expr::BoundSelect, p: &plan::PhysicalPlan) -> Vec<String> {
        analyze::validate_plan(q, p, "pre-execution", None)
            .into_iter()
            .filter(analyze::Diagnostic::is_error)
            .map(|d| d.render())
            .collect()
    }
    fn annotate(q: &expr::BoundSelect, p: &plan::PhysicalPlan) -> String {
        analyze::annotated_plan(q, p)
    }
    exec::install_plan_check(check);
    exec::install_explain_annotator(annotate);
}

/// Saves the database's committed state to a snapshot file.
pub fn save_database(db: &storage::Database, path: impl AsRef<Path>) -> Result<()> {
    storage::save_snapshot(db, path.as_ref())
}

/// Loads a snapshot file, re-binding any persisted CHECK constraints
/// through the expression layer.
pub fn load_database(path: impl AsRef<Path>) -> Result<storage::Database> {
    storage::load_snapshot(path.as_ref(), &|schema, name, sql| {
        let body = sql::parse_expr(sql)?;
        let bound = expr::bind_expr_for_table(schema, &schema.name, &body)?;
        Ok(std::sync::Arc::new(expr::BoundCheck::new(
            name, bound, schema,
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trac_exec::execute_statement;

    #[test]
    fn save_load_with_check_constraints() {
        let db = storage::Database::new();
        execute_statement(
            &db,
            "CREATE TABLE routing (mach_id TEXT NOT NULL, neighbor TEXT NOT NULL) \
             SOURCE COLUMN mach_id CHECK (mach_id <> neighbor)",
        )
        .unwrap();
        execute_statement(&db, "INSERT INTO routing VALUES ('m1', 'm2')").unwrap();
        let path = std::env::temp_dir().join(format!("trac_umbrella_{}.snap", std::process::id()));
        save_database(&db, &path).unwrap();
        let loaded = load_database(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Data survived…
        let r = execute_statement(&loaded, "SELECT COUNT(*) FROM routing").unwrap();
        assert_eq!(r.affected(), 1);
        // …and so did the constraint, still enforced.
        let err =
            execute_statement(&loaded, "INSERT INTO routing VALUES ('m3', 'm3')").unwrap_err();
        assert_eq!(err.kind(), "constraint");
    }

    #[test]
    fn installed_validation_certifies_executed_plans_and_annotates_explain() {
        // Installing the analyzer-backed hooks must not disturb sound
        // execution (the debug pre-execution check passes silently) and
        // must annotate EXPLAIN output with dataflow facts.
        install_plan_validation();
        let t = workload::load_paper_tables().unwrap();
        let r = execute_statement(
            &t.db,
            "SELECT mach_id FROM Activity WHERE value = 'idle' ORDER BY mach_id",
        )
        .unwrap();
        assert_eq!(r.affected(), 2);
        let r = execute_statement(&t.db, "EXPLAIN SELECT mach_id FROM Activity").unwrap();
        let exec::StatementResult::Rows(q) = r else {
            panic!("EXPLAIN must produce rows");
        };
        let text = format!("{q}");
        assert!(text.contains("slots={Activity}"), "{text}");
    }
}
