//! Constraint-aware relevance (the paper's Section 3.4 future work).
//!
//! "If constraints are in form of predicates, we can take a user query
//! and append the conjunction of predicates defining such constraints …
//! This will have the effect in some cases of further increasing the
//! precision of the set of relevant sources."
//!
//! The paper's own motivating case (end of Section 4.1.2): the
//! sequence-of-updates scenario where m1 makes itself its own neighbor
//! "would not occur if we had an explicit constraint on the Routing table
//! that a machine can't have itself as a neighbor."

use std::sync::Arc;
use trac::core::oracle::relevant_sources_oracle;
use trac::core::{RecencyPlan, RelevanceConfig};
use trac::exec::execute_statement;
use trac::expr::{bind_select, parse_check};
use trac::sql::parse_select;
use trac::storage::{ColumnDef, Database, TableSchema};
use trac::types::{ColumnDomain, DataType, SourceId, Timestamp, Value};

fn db_with_routing_constraint(no_self_neighbor: bool) -> Database {
    let db = Database::new();
    let machines = ColumnDomain::text_set(["m1", "m2", "m3"]);
    db.create_table(
        TableSchema::new(
            "activity",
            vec![
                ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
                ColumnDef::new("value", DataType::Text)
                    .with_domain(ColumnDomain::text_set(["idle", "busy"])),
            ],
            Some("mach_id"),
        )
        .unwrap(),
    )
    .unwrap();
    let mut routing = TableSchema::new(
        "routing",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
            ColumnDef::new("neighbor", DataType::Text).with_domain(machines),
        ],
        Some("mach_id"),
    )
    .unwrap();
    if no_self_neighbor {
        let check = parse_check(&routing, "no_self_neighbor", "mach_id <> neighbor").unwrap();
        routing = routing.with_check(check);
    }
    db.create_table(routing).unwrap();
    db.create_index("activity", "mach_id").unwrap();
    db.create_index("routing", "mach_id").unwrap();
    let a = db.begin_read().table_id("activity").unwrap();
    let r = db.begin_read().table_id("routing").unwrap();
    db.with_write(|w| {
        let t = Timestamp::from_secs(1);
        for m in ["m1", "m2", "m3"] {
            w.heartbeat(&SourceId::new(m), t)?;
        }
        // m2 idle, others busy; routing m1→m3 (no self-loops).
        for (m, v) in [("m1", "busy"), ("m2", "idle"), ("m3", "busy")] {
            w.insert(a, vec![Value::text(m), Value::text(v)])?;
        }
        w.insert(r, vec![Value::text("m1"), Value::text("m3")])?;
        Ok(())
    })
    .unwrap();
    db
}

fn sources(db: &Database, sql: &str) -> (Vec<String>, Vec<String>) {
    let txn = db.begin_read();
    let bound = bind_select(&txn, &parse_select(sql).unwrap()).unwrap();
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default()).unwrap();
    let computed: Vec<String> = plan
        .execute(&txn)
        .unwrap()
        .into_iter()
        .map(|s| s.0)
        .collect();
    let truth: Vec<String> = relevant_sources_oracle(&txn, &bound, 50_000_000)
        .unwrap()
        .into_iter()
        .map(|s| s.0)
        .collect();
    (computed, truth)
}

/// The query asking which machines are their own idle neighbor. Without
/// the constraint every machine could become relevant via Routing (it
/// could add itself); with the constraint, no potential Routing tuple
/// can satisfy `mach_id = neighbor`, so nothing is relevant via Routing.
const SELF_NEIGHBOR_QUERY: &str = "SELECT A.mach_id FROM Routing R, Activity A \
     WHERE R.mach_id = R.neighbor AND R.neighbor = A.mach_id AND A.value = 'idle'";

#[test]
fn constraint_tightens_relevance() {
    // Without the constraint: m2 is truly relevant via Routing (it could
    // insert a self-loop that joins its own idle Activity row); the
    // analyzer's upper bound covers everyone (the mixed predicate
    // R.mach_id = R.neighbor defeats Theorem 4).
    let unconstrained = db_with_routing_constraint(false);
    let (computed, truth) = sources(&unconstrained, SELF_NEIGHBOR_QUERY);
    assert_eq!(truth, vec!["m2"]);
    assert_eq!(computed, vec!["m1", "m2", "m3"], "sound upper bound");
    // With the constraint: self-loops are illegal, so *no* source is
    // relevant — and the analyzer proves it (the conjunction of the
    // mixed predicate with the constraint is unsatisfiable), collapsing
    // the upper bound to the exact empty answer.
    let constrained = db_with_routing_constraint(true);
    let (computed, truth) = sources(&constrained, SELF_NEIGHBOR_QUERY);
    assert!(truth.is_empty(), "oracle with constraints: {truth:?}");
    assert!(
        computed.is_empty(),
        "analyzer with constraints: {computed:?}"
    );
}

#[test]
fn constraint_enforced_on_writes() {
    let db = db_with_routing_constraint(true);
    let r = db.begin_read().table_id("routing").unwrap();
    let err = db
        .with_write(|w| w.insert(r, vec![Value::text("m1"), Value::text("m1")]))
        .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    assert!(err.message().contains("no_self_neighbor"));
    // Legal rows still insert.
    db.with_write(|w| w.insert(r, vec![Value::text("m2"), Value::text("m1")]))
        .unwrap();
}

#[test]
fn check_via_sql_ddl() {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE routing (mach_id TEXT NOT NULL, neighbor TEXT NOT NULL) \
         SOURCE COLUMN mach_id CHECK (mach_id <> neighbor)",
    )
    .unwrap();
    let ok = execute_statement(&db, "INSERT INTO routing VALUES ('m1', 'm2')");
    assert!(ok.is_ok());
    let err = execute_statement(&db, "INSERT INTO routing VALUES ('m1', 'm1')").unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // Updates are validated too.
    let err = execute_statement(
        &db,
        "UPDATE routing SET neighbor = 'm1' WHERE mach_id = 'm1'",
    )
    .unwrap_err();
    assert_eq!(err.kind(), "constraint");
    // Multiple CHECK clauses parse and roundtrip through Display.
    let stmt = trac::sql::parse_statement(
        "CREATE TABLE t (a INT NOT NULL, b INT) CHECK (a > 0) CHECK (b <> 5)",
    )
    .unwrap();
    let printed = stmt.to_string();
    assert!(printed.contains("CHECK (a > 0)"));
    assert!(printed.contains("CHECK (b <> 5)"));
    assert_eq!(trac::sql::parse_statement(&printed).unwrap(), stmt);
}

#[test]
fn regular_column_constraint_sharpens_satisfiability() {
    // Activity CHECK (value <> 'idle'): a query for idle machines can
    // never be satisfied by a legal tuple, so no source is relevant.
    let db = Database::new();
    let machines = ColumnDomain::text_set(["m1", "m2"]);
    let mut schema = TableSchema::new(
        "activity",
        vec![
            ColumnDef::new("mach_id", DataType::Text).with_domain(machines),
            ColumnDef::new("value", DataType::Text)
                .with_domain(ColumnDomain::text_set(["idle", "busy"])),
        ],
        Some("mach_id"),
    )
    .unwrap();
    let body = trac::expr::bind_expr_for_table(
        &schema,
        "activity",
        &trac::sql::parse_expr("value <> 'idle'").unwrap(),
    )
    .unwrap();
    let check = trac::expr::BoundCheck::new("never_idle", body, &schema);
    schema = schema.with_check(Arc::new(check));
    db.create_table(schema).unwrap();
    db.create_index("activity", "mach_id").unwrap();
    db.with_write(|w| {
        for m in ["m1", "m2"] {
            w.heartbeat(&SourceId::new(m), Timestamp::from_secs(1))?;
        }
        Ok(())
    })
    .unwrap();
    let (computed, truth) = sources(&db, "SELECT mach_id FROM activity WHERE value = 'idle'");
    assert!(truth.is_empty());
    assert!(computed.is_empty());
    // Whereas asking for busy machines keeps everyone relevant.
    let (computed, _) = sources(&db, "SELECT mach_id FROM activity WHERE value = 'busy'");
    assert_eq!(computed, vec!["m1", "m2"]);
}
