//! Differential test: planner + streaming executor vs a naive reference
//! evaluator.
//!
//! The reference evaluator is the semantics the old monolithic executor
//! implemented directly: materialize the full cross product of the FROM
//! list, keep tuples whose predicate evaluates to `TRUE` (evaluation
//! errors count as "not true"), project, then deduplicate for
//! `DISTINCT`. Random SPJ/aggregate queries over random instances with
//! NULLs must produce the identical result multiset through
//! `plan_select` + `execute_plan`.
//!
//! Every generated plan is additionally certified by the translation
//! validator: the planner must never emit a plan the abstract-domain
//! dataflow walk cannot prove faithful to the bound query.
//!
//! On top of the serial differential, every generated query re-runs
//! under the morsel-driven parallel path at `threads ∈ {2, 8}` (the
//! serial `threads = 1` result being the baseline) with a morsel size
//! small enough to split even these tiny tables. The parallel rows must
//! be **byte-identical** to the serial rows — not merely multiset-equal
//! — because `Gather` merges morsel outputs in morsel-index order; this
//! covers ordered plans (where byte-identity is semantically required)
//! and exceeds the multiset requirement for unordered ones.
//!
//! Two typed-kernel arms close the loop on the lane certificates: the
//! main workload re-runs with `typed_kernels: false` (the boxed `Value`
//! path as byte-level reference over NULL-heavy INT columns), and a
//! dedicated float workload feeds a nullable FLOAT column NULLs *and*
//! NaN — which has no SQL literal and enters through the storage write
//! path, exactly as a malformed distributed source would deliver it.

use proptest::prelude::*;
use trac::exec::{execute_select, execute_select_with, execute_statement};
use trac::expr::{bind_select, eval_expr, eval_predicate, BoundSelect, Projection, Truth};
use trac::sql::parse_select;
use trac::storage::{Database, ReadTxn, Row};
use trac::types::Value;

const SIDS: [&str; 4] = ["s0", "s1", "s2", "s3"];

/// `n = 4` encodes NULL so instances exercise three-valued logic.
fn int_cell(n: usize) -> String {
    if n == 4 {
        "NULL".to_string()
    } else {
        n.to_string()
    }
}

fn setup(t_rows: &[(usize, usize)], u_rows: &[(usize, usize)]) -> Database {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE t (s TEXT NOT NULL, n INT) SOURCE COLUMN s",
    )
    .unwrap();
    execute_statement(
        &db,
        "CREATE TABLE u (v TEXT NOT NULL, m INT) SOURCE COLUMN v",
    )
    .unwrap();
    execute_statement(&db, "CREATE INDEX ti ON t (s)").unwrap();
    execute_statement(&db, "CREATE INDEX ui ON u (v)").unwrap();
    for &(s, n) in t_rows {
        execute_statement(
            &db,
            &format!("INSERT INTO t VALUES ('{}', {})", SIDS[s], int_cell(n)),
        )
        .unwrap();
    }
    for &(v, m) in u_rows {
        execute_statement(
            &db,
            &format!("INSERT INTO u VALUES ('{}', {})", SIDS[v], int_cell(m)),
        )
        .unwrap();
    }
    db
}

/// Predicate atoms over the given qualified column names; `text_cols`
/// and `int_cols` index into `cols`.
fn atom_strategy(
    text_cols: Vec<&'static str>,
    int_cols: Vec<&'static str>,
) -> BoxedStrategy<String> {
    let tc = text_cols.clone();
    let tc2 = text_cols;
    let ic = int_cols.clone();
    let ic2 = int_cols.clone();
    let ic3 = int_cols;
    prop_oneof![
        ((0..tc.len()), 0..4usize).prop_map(move |(c, s)| format!("{} = '{}'", tc[c], SIDS[s])),
        (0..tc2.len()).prop_map(move |c| format!("{} IN ('s0', 's2')", tc2[c])),
        ((0..ic.len()), 0..4i64).prop_map(move |(c, k)| format!("{} = {k}", ic[c])),
        ((0..ic2.len()), 0..4i64).prop_map(move |(c, k)| format!("{} < {k}", ic2[c])),
        ((0..ic3.len()), any::<bool>()).prop_map(move |(c, not)| {
            format!("{} IS {}NULL", ic3[c], if not { "NOT " } else { "" })
        }),
    ]
    .boxed()
}

fn pred_strategy(atoms: BoxedStrategy<String>) -> BoxedStrategy<String> {
    atoms.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

/// SELECT list for a given column pool: a non-empty column subset or
/// `COUNT(*)`, with optional DISTINCT.
fn shape_query(cols: &[&str], picked: Vec<&str>, count: bool, distinct: bool) -> String {
    if count {
        return "SELECT COUNT(*)".to_string();
    }
    let picked = if picked.is_empty() {
        vec![cols[0]]
    } else {
        picked
    };
    format!(
        "SELECT {}{}",
        if distinct { "DISTINCT " } else { "" },
        picked.join(", ")
    )
}

fn single_table_query() -> BoxedStrategy<String> {
    const COLS: [&str; 2] = ["s", "n"];
    let atoms = atom_strategy(vec!["s"], vec!["n"]);
    (
        pred_strategy(atoms),
        proptest::sample::subsequence(COLS.to_vec(), 0..=2),
        any::<bool>(),
        any::<bool>(),
        // `ORDER BY s LIMIT k` lowers to the TopNIndex fast path (s is
        // indexed and NOT NULL), so the differential also covers the
        // ordered-index walk against the general Sort+Limit pipeline.
        (
            any::<bool>(),
            prop_oneof![Just(None), (1..4u64).prop_map(Some)],
        ),
    )
        .prop_map(|(pred, picked, count, distinct, (order, limit))| {
            let head = shape_query(&COLS, picked, count, distinct);
            let tail = match (order && !count, limit) {
                (true, Some(k)) => format!(" ORDER BY s LIMIT {k}"),
                (true, None) => " ORDER BY s".to_string(),
                _ => String::new(),
            };
            format!("{head} FROM t WHERE {pred}{tail}")
        })
        .boxed()
}

fn join_query() -> BoxedStrategy<String> {
    const COLS: [&str; 4] = ["a.s", "a.n", "b.v", "b.m"];
    let atoms = prop_oneof![
        3 => atom_strategy(vec!["a.s", "b.v"], vec!["a.n", "b.m"]),
        1 => Just("a.s = b.v".to_string()),
        1 => Just("a.n = b.m".to_string()),
    ]
    .boxed();
    (
        pred_strategy(atoms),
        proptest::sample::subsequence(COLS.to_vec(), 0..=3),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(pred, picked, count, distinct, order)| {
            let head = shape_query(&COLS, picked, count, distinct);
            let tail = if order && !count { " ORDER BY a.s" } else { "" };
            format!("{head} FROM t a, u b WHERE {pred}{tail}")
        })
        .boxed()
}

fn query_strategy() -> BoxedStrategy<String> {
    prop_oneof![single_table_query(), join_query()].boxed()
}

/// The retained naive evaluator: cross product, filter, project, dedup.
fn reference_eval(txn: &ReadTxn, q: &BoundSelect) -> Vec<Vec<Value>> {
    let mut tuples: Vec<Vec<Row>> = vec![Vec::new()];
    for t in &q.tables {
        let rows = txn.scan(t.id).unwrap();
        let mut next = Vec::new();
        for tuple in &tuples {
            for row in &rows {
                let mut extended = tuple.clone();
                extended.push(row.clone());
                next.push(extended);
            }
        }
        tuples = next;
    }
    let filtered: Vec<Vec<Row>> = tuples
        .into_iter()
        .filter(|tuple| match &q.predicate {
            None => true,
            Some(p) => matches!(eval_predicate(p, tuple), Ok(Truth::True)),
        })
        .collect();
    if q.is_aggregate() {
        // The generator only emits COUNT(*).
        assert!(matches!(
            q.projections.as_slice(),
            [Projection::Aggregate { arg: None, .. }]
        ));
        return vec![vec![Value::Int(i64::try_from(filtered.len()).unwrap())]];
    }
    let mut out: Vec<Vec<Value>> = filtered
        .iter()
        .map(|tuple| {
            q.projections
                .iter()
                .map(|p| match p {
                    Projection::Scalar { expr, .. } => eval_expr(expr, tuple).unwrap(),
                    Projection::Aggregate { .. } => unreachable!(),
                })
                .collect()
        })
        .collect();
    if q.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        out.retain(|row| {
            if seen.contains(row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn streaming_executor_matches_naive_reference(
        t_rows in proptest::collection::vec((0..4usize, 0..5usize), 0..8),
        u_rows in proptest::collection::vec((0..4usize, 0..5usize), 0..6),
        sql in query_strategy(),
    ) {
        let db = setup(&t_rows, &u_rows);
        let txn = db.begin_read();
        let bound = bind_select(&txn, &parse_select(&sql).unwrap()).unwrap();
        // Translation validation: every plan the planner produces for a
        // generated query must certify cleanly.
        let plan = trac::plan::plan_select(&txn, &bound, trac::plan::ExecOptions::default())
            .unwrap();
        let findings = trac::analyze::validate_plan(&bound, &plan, "differential", None);
        prop_assert!(
            findings.is_empty(),
            "planner plan failed validation for {}:\n{}\nplan:\n{}",
            &sql,
            findings
                .iter()
                .map(trac::analyze::Diagnostic::render)
                .collect::<Vec<_>>()
                .join("\n"),
            plan.render()
        );
        let serial = execute_select(&txn, &bound).unwrap().rows;
        // The naive reference implements no ORDER BY/LIMIT; compare the
        // full multiset only for un-truncated queries.
        if bound.limit.is_none() {
            let mut expected = reference_eval(&txn, &bound);
            let mut got = serial.clone();
            expected.sort();
            got.sort();
            prop_assert_eq!(
                expected,
                got,
                "reference and default executor disagree for {}",
                &sql
            );
        }
        // Engine differential: the retained row-at-a-time scalar engine
        // is the byte-level reference the columnar default is checked
        // against — same plan, same rows, same order.
        let scalar_opts = trac::plan::ExecOptions {
            columnar: false,
            ..Default::default()
        };
        let scalar = execute_select_with(&txn, &bound, scalar_opts).unwrap().0.rows;
        prop_assert_eq!(
            &serial,
            &scalar,
            "columnar engine diverges from the scalar reference for {}",
            &sql
        );
        // Typed-kernel differential: disabling the lane certificates
        // forces every filter, join, and aggregate through the boxed
        // `Value` reference path; the unboxed `IntVec`/`TextVec` kernels
        // the certificates admit must be byte-identical. The `n`/`m`
        // columns are NULL-heavy (one cell value in five encodes NULL),
        // so this arm leans on the certified null bitmaps (TRAC025).
        let boxed_opts = trac::plan::ExecOptions {
            typed_kernels: false,
            ..Default::default()
        };
        let boxed = execute_select_with(&txn, &bound, boxed_opts).unwrap().0.rows;
        prop_assert_eq!(
            &serial,
            &boxed,
            "typed kernels diverge from the boxed reference for {}",
            &sql
        );
        // Fast-path differential: disabling the certified shortcuts must
        // not change a single byte — the shortcut and the general
        // pipeline share tie order (index postings keep insertion order
        // within a key, exactly the stable sort's tie order).
        let general_opts = trac::plan::ExecOptions {
            fast_paths: false,
            ..Default::default()
        };
        let general = execute_select_with(&txn, &bound, general_opts).unwrap().0.rows;
        prop_assert_eq!(
            &serial,
            &general,
            "fast-path plan changes results for {}",
            &sql
        );
        // Parallel differential: byte-identical to the serial rows under
        // every thread count, for both a splitting and a default morsel.
        for threads in [2usize, 8] {
            for batch in [2usize, 1024] {
                let opts = trac::plan::ExecOptions::default().with_parallelism(threads, batch);
                let parallel = execute_select_with(&txn, &bound, opts).unwrap().0.rows;
                prop_assert_eq!(
                    &serial,
                    &parallel,
                    "parallel (threads={}, batch={}) diverges from serial for {}",
                    threads,
                    batch,
                    &sql
                );
            }
        }
        // Stats-mutation differential: skewing the catalog statistics
        // may flip access paths, join orders, and fast-path decisions —
        // never the result. Access-path changes can legitimately change
        // the *order* unsorted rows stream in (a probe returns key
        // order, a scan slot order), so the claim here is multiset
        // equality; byte-identity per plan is covered above.
        let mut baseline = serial.clone();
        baseline.sort();
        for skew_rows in [0u64, 1_000_000] {
            for t in &bound.tables {
                db.update_table_stats(t.id, |s| {
                    s.rows = skew_rows;
                    for c in &mut s.columns {
                        c.nulls = if skew_rows == 0 { u64::MAX } else { 0 };
                    }
                });
            }
            let txn2 = db.begin_read();
            for opts in [
                trac::plan::ExecOptions::default(),
                trac::plan::ExecOptions {
                    cost_based_join_order: true,
                    ..Default::default()
                },
            ] {
                let mut skewed = execute_select_with(&txn2, &bound, opts).unwrap().0.rows;
                skewed.sort();
                prop_assert_eq!(
                    &baseline,
                    &skewed,
                    "stats skew (rows={}) changed results for {}",
                    skew_rows,
                    &sql
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Explorer-based differential: generated workloads run under the
    /// deterministic interleaving explorer at `threads ∈ {2, 4}` over a
    /// small seed set. Every explored schedule must produce rows
    /// byte-identical to the serial baseline, and the session plan
    /// cache must agree with the uncached path: a report served from a
    /// cached prepared plan returns the same rows as a cold report and
    /// as a direct (never-cached) execution.
    #[test]
    fn explored_interleavings_agree_with_serial(
        t_rows in proptest::collection::vec((0..4usize, 0..5usize), 1..8),
        u_rows in proptest::collection::vec((0..4usize, 0..5usize), 0..6),
        sql in query_strategy(),
    ) {
        let db = setup(&t_rows, &u_rows);
        let txn = db.begin_read();
        let bound = bind_select(&txn, &parse_select(&sql).unwrap()).unwrap();
        let serial = execute_select(&txn, &bound).unwrap().rows;
        for threads in [2usize, 4] {
            for seed in [1u64, 2] {
                let opts = trac::plan::ExecOptions::default().with_parallelism(threads, 2);
                let report = trac::exec::schedule::explore(
                    trac::exec::schedule::Strategy::Random { seed, schedules: 2 },
                    |_ctl| {
                        let rows = execute_select_with(&txn, &bound, opts)
                            .map_err(|e| e.to_string())?
                            .0
                            .rows;
                        if rows == serial {
                            Ok(())
                        } else {
                            Err(format!(
                                "threads={threads} seed={seed}: explored schedule \
                                 diverges from serial for {sql}"
                            ))
                        }
                    },
                );
                prop_assert!(report.is_clean(), "{:?}", report.failure);
            }
        }
        drop(txn);
        // Cache on/off agreement: cold report (miss), cached report
        // (hit), and the uncached direct path must return identical rows.
        let session = trac::core::Session::new(db.clone());
        let cold = session.recency_report(&sql).unwrap().result.rows;
        let cached = session.recency_report(&sql).unwrap().result.rows;
        let uncached = session.query(&sql).unwrap().rows;
        prop_assert_eq!(&cold, &serial, "cold report diverges for {}", &sql);
        prop_assert_eq!(&cached, &serial, "cached report diverges for {}", &sql);
        prop_assert_eq!(&uncached, &serial, "uncached path diverges for {}", &sql);
        let stats = session.plan_cache_stats();
        prop_assert!(stats.hits >= 1, "second report must hit the plan cache");
    }
}

/// One step of a generated maintenance history (see
/// [`delta_maintained_reports_match_rescans`]).
#[derive(Debug, Clone)]
enum DeltaOp {
    /// Heartbeat upsert for `SIDS[sid]` at `micros` (possibly stale —
    /// the monotone upsert must no-op, and so must the fold).
    Heartbeat { sid: usize, micros: i64 },
    /// Source-attributed ingest: heartbeat leg plus a `t` row, one
    /// transaction (both change events fold together).
    Ingest { sid: usize, n: usize, micros: i64 },
    /// Plain SQL insert into `t` (no heartbeat leg): a witness row for
    /// a source that may have no heartbeat yet.
    SqlInsert { sid: usize, n: usize },
    /// SQL delete from `t`: non-monotone, must force a re-registration.
    Delete { n: usize },
    /// Report and compare delta vs rescan.
    Report,
    /// Registration/fold racing an uncommitted writer: publish a
    /// heartbeat event, report while it is in flight (both paths must
    /// exclude it), commit, report again (both must include it).
    BlockedReport { sid: usize, micros: i64 },
}

fn delta_op() -> BoxedStrategy<DeltaOp> {
    let micros = 1_000_000i64..64_000_000;
    prop_oneof![
        3 => (0..4usize, micros.clone()).prop_map(|(sid, micros)| DeltaOp::Heartbeat { sid, micros }),
        3 => (0..4usize, 0..5usize, micros.clone())
            .prop_map(|(sid, n, micros)| DeltaOp::Ingest { sid, n, micros }),
        2 => (0..4usize, 0..5usize).prop_map(|(sid, n)| DeltaOp::SqlInsert { sid, n }),
        1 => (0..5usize).prop_map(|n| DeltaOp::Delete { n }),
        3 => Just(DeltaOp::Report),
        1 => (0..4usize, micros).prop_map(|(sid, micros)| DeltaOp::BlockedReport { sid, micros }),
    ]
    .boxed()
}

/// Reports the same SQL through the delta-maintained session and a
/// maintenance-free reference session, and demands byte-identical
/// recency reports (every field, via the Debug render).
fn check_report_parity(
    maintained: &trac::core::Session,
    reference: &trac::core::Session,
    sql: &str,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    let delta = maintained.recency_report(sql).unwrap().report;
    let rescan = reference.recency_report(sql).unwrap().report;
    prop_assert_eq!(
        format!("{:?}", delta),
        format!("{:?}", rescan),
        "delta-maintained report diverges from the rescan for {}",
        sql
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Maintenance differential: a random interleaving of heartbeat
    /// upserts, source-attributed ingests, plain inserts, and deletes,
    /// with reports interspersed. The session keeps delta-maintained
    /// state across the whole history (registered mid-stream, folded
    /// per report, force-rescanned by deletes); a maintenance-disabled
    /// session rescans every time. Every report — including ones racing
    /// an uncommitted writer — must be byte-identical between the two.
    #[test]
    fn delta_maintained_reports_match_rescans(
        t_rows in proptest::collection::vec((0..4usize, 0..5usize), 0..6),
        u_rows in proptest::collection::vec((0..4usize, 0..5usize), 0..4),
        ops in proptest::collection::vec(delta_op(), 1..14),
        sql in query_strategy(),
    ) {
        use trac::types::{SourceId, Timestamp};
        let db = setup(&t_rows, &u_rows);
        let tid = db.begin_read().table_id("t").unwrap();
        let maintained = trac::core::Session::new(db.clone());
        let mut reference = trac::core::Session::new(db.clone());
        reference.exec_options.maintain_reports = false;
        for op in &ops {
            match op {
                DeltaOp::Heartbeat { sid, micros } => {
                    db.with_write(|w| {
                        w.heartbeat(&SourceId::new(SIDS[*sid]), Timestamp::from_micros(*micros))
                    })
                    .unwrap();
                }
                DeltaOp::Ingest { sid, n, micros } => {
                    db.with_write(|w| {
                        let ts = Timestamp::from_micros(*micros);
                        w.ingest(
                            &SourceId::new(SIDS[*sid]),
                            tid,
                            vec![
                                Value::text(SIDS[*sid]),
                                if *n == 4 { Value::Null } else { Value::Int(*n as i64) },
                            ],
                            ts,
                        )
                    })
                    .unwrap();
                }
                DeltaOp::SqlInsert { sid, n } => {
                    execute_statement(
                        &db,
                        &format!("INSERT INTO t VALUES ('{}', {})", SIDS[*sid], int_cell(*n)),
                    )
                    .unwrap();
                }
                DeltaOp::Delete { n } => {
                    execute_statement(&db, &format!("DELETE FROM t WHERE n = {n}")).unwrap();
                }
                DeltaOp::Report => {
                    check_report_parity(&maintained, &reference, &sql)?;
                }
                DeltaOp::BlockedReport { sid, micros } => {
                    let w = db.begin_write();
                    w.heartbeat(&SourceId::new(SIDS[*sid]), Timestamp::from_micros(*micros))
                        .unwrap();
                    // In flight: neither path may see the write.
                    check_report_parity(&maintained, &reference, &sql)?;
                    w.commit();
                    // Committed: both must pick it up.
                    check_report_parity(&maintained, &reference, &sql)?;
                }
            }
        }
        check_report_parity(&maintained, &reference, &sql)?;
        // The maintained session must actually have exercised the delta
        // machinery (registration happens on the first report).
        prop_assert!(maintained.maintenance_stats().registrations >= 1);
    }
}

/// Cells for the float column `x`: finite values with a deliberate
/// duplicate (2.5 twice, so extremes tie and equality predicates hit
/// more than one row), NULL, and NaN. NaN has no SQL literal — it can
/// only enter through the storage write path, exactly as a malformed
/// distributed source feed would deliver it.
fn float_cell(c: usize) -> Value {
    match c {
        0 => Value::Float(-1.5),
        1 => Value::Float(0.0),
        2 | 3 => Value::Float(2.5),
        4 => Value::Null,
        _ => Value::Float(f64::NAN),
    }
}

fn float_setup(rows: &[(usize, usize, usize)]) -> Database {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE f (s TEXT NOT NULL, x FLOAT, n INT) SOURCE COLUMN s",
    )
    .unwrap();
    execute_statement(&db, "CREATE INDEX fs ON f (s)").unwrap();
    execute_statement(&db, "CREATE INDEX fx ON f (x)").unwrap();
    let tid = db.begin_read().table_id("f").unwrap();
    db.with_write(|w| {
        for &(s, x, n) in rows {
            let n_cell = if n == 4 {
                Value::Null
            } else {
                Value::Int(i64::try_from(n).unwrap())
            };
            w.insert(tid, vec![Value::text(SIDS[s]), float_cell(x), n_cell])?;
        }
        Ok(())
    })
    .unwrap();
    db
}

/// Single-table queries over the float fixture: comparison and
/// null-test predicates on `x`, plus scalar projections and the full
/// aggregate family (`MIN`/`MAX`/`SUM`/`AVG` over the float lane).
fn float_query() -> BoxedStrategy<String> {
    const COLS: [&str; 3] = ["s", "x", "n"];
    let cmp = (
        prop_oneof![Just("<"), Just("<="), Just("="), Just(">="), Just(">")],
        prop_oneof![Just("-1.5"), Just("0.0"), Just("2.5"), Just("3.25")],
    )
        .prop_map(|(op, k)| format!("x {op} {k}"));
    let atoms = prop_oneof![
        (0..4usize).prop_map(|s| format!("s = '{}'", SIDS[s])),
        cmp,
        any::<bool>().prop_map(|not| format!("x IS {}NULL", if not { "NOT " } else { "" })),
        (0..4i64).prop_map(|k| format!("n < {k}")),
    ]
    .boxed();
    let head = prop_oneof![
        prop_oneof![
            Just("COUNT(*)"),
            Just("MIN(x)"),
            Just("MAX(x)"),
            Just("SUM(x)"),
            Just("AVG(x)"),
            Just("MIN(n)"),
            Just("SUM(n)"),
        ]
        .prop_map(|agg| format!("SELECT {agg}")),
        (
            proptest::sample::subsequence(COLS.to_vec(), 0..=3),
            any::<bool>(),
        )
            .prop_map(|(picked, distinct)| shape_query(&COLS, picked, false, distinct)),
    ];
    (pred_strategy(atoms), head)
        .prop_map(|(pred, head)| format!("{head} FROM f WHERE {pred}"))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Typed-kernel differential over float data the main fixture cannot
    /// express: a nullable FLOAT column carrying NULLs *and* NaN. The
    /// default engine (typed kernels enabled) must be byte-identical to
    /// the boxed `Value` reference (`typed_kernels: false`), to the
    /// row-at-a-time scalar engine, and to the general pipeline with the
    /// certified shortcuts disabled — the last arm exercising the
    /// TRAC026 gate: `MIN(x)`/`MAX(x)` may take the index walk only when
    /// the catalog proves the lane NaN-free, so NaN-bearing instances
    /// must fall back without changing a byte. `Value` equality is the
    /// IEEE total order, so NaN outputs compare equal when both engines
    /// produce them.
    #[test]
    fn typed_kernels_match_boxed_reference_on_float_data(
        rows in proptest::collection::vec((0..4usize, 0..6usize, 0..5usize), 0..10),
        sql in float_query(),
    ) {
        let db = float_setup(&rows);
        let txn = db.begin_read();
        let bound = bind_select(&txn, &parse_select(&sql).unwrap()).unwrap();
        let serial = execute_select(&txn, &bound).unwrap().rows;
        let arms = [
            (
                trac::plan::ExecOptions { typed_kernels: false, ..Default::default() },
                "boxed value reference",
            ),
            (
                trac::plan::ExecOptions { columnar: false, ..Default::default() },
                "scalar engine",
            ),
            (
                trac::plan::ExecOptions { fast_paths: false, ..Default::default() },
                "general pipeline",
            ),
        ];
        for (opts, engine) in arms {
            let got = execute_select_with(&txn, &bound, opts).unwrap().0.rows;
            prop_assert_eq!(
                &serial,
                &got,
                "{} diverges from the typed kernels for {}",
                engine,
                &sql
            );
        }
    }
}
