//! Pins the EXPLAIN output of the 12 sample workload queries plus four
//! fast-path demonstration queries.
//!
//! Every operator line carries its estimated cardinality and abstract
//! cost (`(est N rows, cost M)`), the four certified fast paths
//! announce themselves with a `[fast-path: ...]` marker, and every
//! table-reading leaf renders its typed-kernel lane certificate as
//! `[typed:...]` (one lowercase type per lane; `?` marks a
//! possibly-NULL lane, `~` a float lane whose catalog bounds admit
//! NaN).  The snapshot keeps all three annotations honest: a
//! cost-model change that silently reroutes a workload query, a guard
//! change that stops a fast path from firing, or a certificate
//! derivation change that strips an unboxed-kernel license shows up
//! as a diff here before it shows up in a perf regression.

use trac::expr::bind_select;
use trac::plan::{plan_select, ExecOptions};
use trac::sql::parse_select;
use trac::storage::Database;
use trac::workload::{
    load_eval_db, load_paper_tables, load_section_42_tables, EvalConfig, PAPER_QUERIES,
};
use trac_analyze::{PAPER_SAMPLE_QUERIES, SECTION42_SAMPLE_QUERIES};

/// Queries crafted so each of the four fast paths demonstrably fires
/// against the paper fixture (`activity.mach_id` is indexed, NOT NULL).
const FASTPATH_QUERIES: [(&str, &str); 4] = [
    ("fastpath/count", "SELECT COUNT(*) FROM Activity"),
    ("fastpath/min", "SELECT MIN(mach_id) FROM Activity"),
    (
        "fastpath/topn",
        "SELECT mach_id FROM Activity ORDER BY mach_id DESC LIMIT 2",
    ),
    (
        "fastpath/inlist",
        "SELECT value FROM Activity WHERE mach_id IN ('m1', 'm3')",
    ),
];

/// `name:` header followed by the indented EXPLAIN tree.
fn explain_block(db: &Database, name: &str, sql: &str) -> String {
    let txn = db.begin_read();
    let stmt = parse_select(sql).expect(name);
    let bound = bind_select(&txn, &stmt).expect(name);
    let plan = plan_select(&txn, &bound, ExecOptions::default()).expect(name);
    format!("{name}:\n{}", plan.render())
}

fn actual_snapshot() -> String {
    let mut blocks = Vec::new();
    let paper = load_paper_tables().expect("paper tables");
    for (name, sql) in PAPER_SAMPLE_QUERIES {
        blocks.push(explain_block(&paper.db, name, sql));
    }
    for (name, sql) in FASTPATH_QUERIES {
        blocks.push(explain_block(&paper.db, name, sql));
    }
    let s42 = load_section_42_tables(&["myScheduler", "mx", "my"]).expect("section 4.2 tables");
    for (name, sql) in SECTION42_SAMPLE_QUERIES {
        blocks.push(explain_block(&s42.db, name, sql));
    }
    // Same fixture scale as the analyzer sweep and workload snapshot.
    let eval = load_eval_db(&EvalConfig::new(200, 20)).expect("eval db");
    for (name, sql) in PAPER_QUERIES {
        blocks.push(explain_block(&eval.db, &format!("eval/{name}"), sql));
    }
    blocks.join("\n")
}

/// Captured from the cost-based planner; regenerate by running this test
/// and copying the printed actual output, then reviewing the diff.
const EXPECTED: &str = r"paper/Q1:
Project (mach_id)
  IndexLookup Activity [IndexProbe(col#0, 2 keys)] [fast-path: in-list probe] filter: 2 conjuncts (est 1 rows, cost 2) [typed:text,text,timestamp]
paper/Q2:
Project (mach_id)
  IndexNLJoin A (col#0) filter: 2 conjuncts (est 1 rows, cost 3) [typed:text,text,timestamp]
    IndexLookup R [IndexProbe(col#0, 1 keys)] filter: 1 conjuncts (est 1 rows, cost 1) [typed:text,text,timestamp]
paper/quickstart:
Project (mach_id, value)
  Scan A [SeqScan] filter: 1 conjuncts (est 2 rows, cost 3) [typed:text,text,timestamp]
paper/ordered:
Project (mach_id)
  Sort (1 keys)
    Scan Activity [SeqScan] filter: 1 conjuncts (est 2 rows, cost 3) [typed:text,text,timestamp]
paper/unfiltered:
Project (mach_id)
  Scan Activity [SeqScan] (est 3 rows, cost 3) [typed:text,text,timestamp]
paper/refined:
Project (mach_id)
  Scan Activity [SeqScan] filter: 2 conjuncts (est 2 rows, cost 3) [typed:text,text,timestamp]
fastpath/count:
CountStar Activity AS count [fast-path: storage row count] (est 3 rows, cost 1) [typed:text,text,timestamp]
fastpath/min:
IndexMinMax Activity.col#0 (Min) AS min [fast-path: ordered index probe] (est 1 rows, cost 1) [typed:text,text,timestamp]
fastpath/topn:
Limit (2)
  Project (mach_id)
    TopNIndex Activity (col#0 desc, first 2) [fast-path: ordered index walk] (est 2 rows, cost 2) [typed:text,text,timestamp]
fastpath/inlist:
Project (value)
  IndexLookup Activity [IndexProbe(col#0, 2 keys)] [fast-path: in-list probe] filter: 1 conjuncts (est 2 rows, cost 2) [typed:text,text,timestamp]
section42/Q3:
Project (runningMachineId)
  IndexLookup R [IndexProbe(col#1, 1 keys)] filter: 1 conjuncts (est 0 rows, cost 1) [typed:text,int]
section42/Q4:
Project (runningMachineId)
  HashJoin(col#0) filter: 2 conjuncts (est 0 rows, cost 2)
    IndexLookup S [IndexProbe(col#0, 1 keys)] filter: 2 conjuncts (est 0 rows, cost 1) [typed:text,int,text]
    IndexLookup R [IndexProbe(col#1, 1 keys)] filter: 1 conjuncts (est 0 rows, cost 1) [typed:text,int]
eval/Q1:
Aggregate (0 keys, 1 projections)
  IndexLookup A [IndexProbe(col#0, 6 keys)] [fast-path: in-list probe] filter: 2 conjuncts (est 60 rows, cost 120) [typed:text,text,timestamp]
eval/Q2:
Aggregate (0 keys, 1 projections)
  Scan A [SeqScan] filter: 2 conjuncts (est 100 rows, cost 200) [typed:text,text,timestamp]
eval/Q3:
Aggregate (0 keys, 1 projections)
  IndexNLJoin A (col#0) filter: 2 conjuncts (est 120 rows, cost 132) [typed:text,text,timestamp]
    IndexLookup R [IndexProbe(col#0, 6 keys)] [fast-path: in-list probe] filter: 1 conjuncts (est 6 rows, cost 6) [typed:text,text,timestamp]
eval/Q4:
Aggregate (0 keys, 1 projections)
  IndexNLJoin A (col#0) filter: 2 conjuncts (est 200 rows, cost 220) [typed:text,text,timestamp]
    Scan R [SeqScan] filter: 1 conjuncts (est 10 rows, cost 10) [typed:text,text,timestamp]";

#[test]
fn explain_snapshot_is_stable() {
    let actual = actual_snapshot();
    if actual != EXPECTED {
        println!("=== ACTUAL ===\n{actual}\n=== END ===");
    }
    assert_eq!(actual, EXPECTED);
}

/// Beyond the snapshot bytes: the acceptance-level claims, asserted
/// structurally so a snapshot regeneration can't silently drop them.
#[test]
fn fast_paths_fire_and_annotations_are_present() {
    let paper = load_paper_tables().expect("paper tables");
    let markers = [
        ("fastpath/count", "[fast-path: storage row count]"),
        ("fastpath/min", "[fast-path: ordered index probe]"),
        ("fastpath/topn", "[fast-path: ordered index walk]"),
        ("fastpath/inlist", "[fast-path: in-list probe]"),
    ];
    for ((name, sql), (mname, marker)) in FASTPATH_QUERIES.iter().zip(markers) {
        assert_eq!(*name, mname);
        let block = explain_block(&paper.db, name, sql);
        assert!(
            block.contains(marker),
            "{name} must show {marker}:\n{block}"
        );
        assert!(
            block.contains("(est ") && block.contains(" rows, cost "),
            "{name} must carry cardinality/cost annotations:\n{block}"
        );
    }
    // The workload itself exercises a fast path too: paper/Q1's IN-list.
    let (name, sql) = PAPER_SAMPLE_QUERIES[0];
    let block = explain_block(&paper.db, name, sql);
    assert!(
        block.contains("[fast-path: in-list probe]"),
        "{name} must probe its IN-list through the index:\n{block}"
    );
}
