//! Property tests for the expression machinery itself.
//!
//! * **DNF preserves semantics**: for random predicates and random
//!   tuples, the DNF (evaluated as OR-of-AND over its disjuncts) agrees
//!   with the original expression under SQL three-valued logic whenever
//!   the original is definite (DNF conversion may turn an `Unknown` into
//!   a definite value only when NULLs interact with negation — it never
//!   flips True to False or vice versa).
//! * **Satisfiability is sound**: on small finite domains, `Sat` implies
//!   a witness exists and `Unsat` implies none does (checked against
//!   exhaustive enumeration).
//! * **Printer round-trips**: parse(print(ast)) == ast for random ASTs.

use proptest::prelude::*;
use std::sync::Arc;
use trac::expr::{conjunct_satisfiable, eval_predicate, to_dnf, BoundExpr, ColRef, Sat3, Truth};
use trac::sql::{parse_expr, BinaryOp, Expr};
use trac::storage::Row;
use trac::types::{ColumnDomain, Value};

// ---------- strategies ----------

/// Random bound predicates over 3 int columns of one table.
fn bound_pred() -> impl Strategy<Value = BoundExpr> {
    let leaf = prop_oneof![
        (
            0..3usize,
            0..4i64,
            prop_oneof![
                Just(BinaryOp::Eq),
                Just(BinaryOp::NotEq),
                Just(BinaryOp::Lt),
                Just(BinaryOp::LtEq),
                Just(BinaryOp::Gt),
                Just(BinaryOp::GtEq)
            ]
        )
            .prop_map(|(c, v, op)| BoundExpr::binary(
                op,
                BoundExpr::col(0, c),
                BoundExpr::lit(v)
            )),
        (
            0..3usize,
            proptest::collection::vec(0..4i64, 1..3),
            any::<bool>()
        )
            .prop_map(|(c, vs, neg)| BoundExpr::InList {
                expr: Box::new(BoundExpr::col(0, c)),
                list: vs.into_iter().map(BoundExpr::lit).collect(),
                negated: neg,
            }),
        (0..3usize, 0..3usize).prop_map(|(a, b)| BoundExpr::binary(
            BinaryOp::Eq,
            BoundExpr::col(0, a),
            BoundExpr::col(0, b)
        )),
        Just(BoundExpr::lit(true)),
        Just(BoundExpr::lit(false)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoundExpr::binary(
                BinaryOp::And,
                a,
                b
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| BoundExpr::binary(BinaryOp::Or, a, b)),
            inner.prop_map(|a| BoundExpr::Not(Box::new(a))),
        ]
    })
}

/// Random tuples over the same 3 columns (values 0..4, sometimes NULL).
fn tuple3() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        prop_oneof![4 => (0..4i64).prop_map(Value::Int), 1 => Just(Value::Null)],
        3,
    )
    .prop_map(|vals| vec![Arc::from(vals.into_boxed_slice()) as Row])
}

/// Random printable SQL expression ASTs (NULL-free, so definite).
fn sql_expr_ast() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        "[a-c]".prop_map(Expr::col),
        (0..100i64).prop_map(Expr::lit),
        "[x-z]{1,3}".prop_map(Expr::lit),
        (0i64..50).prop_map(|v| Expr::Neg(Box::new(Expr::lit(v)))),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                    Just(BinaryOp::GtEq),
                ]
            )
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated
                }
            ),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

/// Evaluates a DNF (as disjunction of conjunctions) under 3VL.
fn eval_dnf(disjuncts: &[Vec<BoundExpr>], tuple: &[Row]) -> Truth {
    let mut out = Truth::False;
    for conj in disjuncts {
        let mut c = Truth::True;
        for t in conj {
            c = c.and(eval_predicate(t, tuple).unwrap_or(Truth::Unknown));
        }
        out = out.or(c);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn dnf_preserves_semantics(pred in bound_pred(), tuple in tuple3()) {
        let dnf = to_dnf(&pred, 100_000);
        prop_assume!(dnf.exact);
        let orig = eval_predicate(&pred, &tuple).unwrap_or(Truth::Unknown);
        let via_dnf = eval_dnf(&dnf.disjuncts, &tuple);
        // Under 3VL, NNF/DNF rewriting is exact for definite inputs; with
        // NULLs it can only refine Unknown (never flip True<->False).
        match orig {
            Truth::Unknown => {}
            definite => prop_assert_eq!(
                via_dnf, definite,
                "DNF changed semantics of {:?}", pred
            ),
        }
    }

    #[test]
    fn satisfiability_is_sound(pred in bound_pred()) {
        // Domains: each column ranges over 0..=3. Enumerate all 64
        // assignments as ground truth.
        let dom = |_: ColRef| ColumnDomain::IntRange { lo: 0, hi: 3 };
        let dnf = to_dnf(&pred, 100_000);
        prop_assume!(dnf.exact);
        for conj in &dnf.disjuncts {
            let verdict = conjunct_satisfiable(conj, &dom);
            let mut truth = false;
            'outer: for a in 0..4i64 {
                for b in 0..4i64 {
                    for c in 0..4i64 {
                        let tuple: Vec<Row> = vec![Arc::from(
                            vec![Value::Int(a), Value::Int(b), Value::Int(c)]
                                .into_boxed_slice(),
                        )];
                        if conj
                            .iter()
                            .all(|t| eval_predicate(t, &tuple) == Ok(Truth::True))
                        {
                            truth = true;
                            break 'outer;
                        }
                    }
                }
            }
            match verdict {
                Sat3::Sat => prop_assert!(truth, "claimed Sat, no witness: {conj:?}"),
                Sat3::Unsat => prop_assert!(!truth, "claimed Unsat, witness exists: {conj:?}"),
                Sat3::Unknown => {} // always permissible
            }
        }
    }

    #[test]
    fn printer_roundtrips(ast in sql_expr_ast()) {
        let printed = ast.to_string();
        let reparsed = parse_expr(&printed)
            .map_err(|e| TestCaseError::fail(format!("{printed}: {e}")))?;
        prop_assert_eq!(&reparsed, &ast, "printed form: {}", printed);
    }
}
