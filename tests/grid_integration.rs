//! Grid simulator ↔ TRAC integration: the whole pipeline from daemons
//! writing logs, through sniffers, to recency-reported queries.

use trac::core::Session;
use trac::grid::{GridConfig, GridSim, MachineState};
use trac::storage::heartbeat;
use trac::types::{Result, TsDuration, Value};

/// The recency guarantee of Section 3.1, end to end: for every source,
/// every simulated event with timestamp `<=` that source's recency
/// timestamp is visible in the database.
#[test]
fn recency_timestamps_are_honest() -> Result<()> {
    let mut sim = GridSim::new(GridConfig {
        n_machines: 6,
        n_schedulers: 2,
        arrival_secs: 15,
        sniffer_lag_secs: (10, 240),
        sniffer_period_secs: 20,
        ..Default::default()
    })?;
    sim.run_for(3 * 3600)?;
    let txn = sim.db().begin_read();
    let beats = heartbeat::all_recencies(&txn)?;
    assert_eq!(beats.len(), 6);
    let job_events = txn.table_id("job_events")?;
    let all_events = txn.scan(job_events)?;
    for (machine, id) in sim.machine_ids().iter().enumerate() {
        let recency = beats
            .iter()
            .find(|(s, _)| s == id)
            .map(|(_, t)| *t)
            .expect("every machine has a heartbeat");
        // Count this machine's job events in the DB vs in its log, up to
        // the recency horizon.
        let in_db = all_events
            .iter()
            .filter(|r| r[0] == id.to_value())
            .filter(|r| r[3].as_timestamp().unwrap() <= recency)
            .count();
        let in_log = sim_log_job_events_upto(&sim, machine, recency);
        assert_eq!(
            in_db, in_log,
            "{id}: database missing events below its recency timestamp"
        );
    }
    Ok(())
}

/// Counts job events in a machine's (complete) local log with `at <=`
/// the horizon. The log is ground truth.
fn sim_log_job_events_upto(
    sim: &GridSim,
    machine: usize,
    horizon: trac::types::Timestamp,
) -> usize {
    sim.log_records(machine)
        .iter()
        .filter(|r| r.at <= horizon)
        .filter(|r| {
            matches!(
                r.event.kind(),
                "submitted" | "routed" | "started" | "completed"
            )
        })
        .count()
}

/// The intro's m1/m2 scenario: a job submitted at one machine, routed to
/// another; depending on which sniffer has reported, the central DB shows
/// all four partially-consistent states — and the recency report lets a
/// user tell them apart.
#[test]
fn four_visibility_states_of_a_routed_job() -> Result<()> {
    // No random arrivals: we drive the logs by hand through the pumps.
    let mut sim = GridSim::new(GridConfig {
        n_machines: 2,
        n_schedulers: 0,
        heartbeat_secs: 0,
        sniffer_lag_secs: (0, 0),
        sniffer_period_secs: 1_000_000, // sniffers pump only when we say
        ..Default::default()
    })?;
    let start = sim.clock();
    let ids = sim.machine_ids();
    let (m1, m2) = (&ids[0], &ids[1]);
    // m1's daemon logs: job 7 submitted and routed to m2.
    // m2's daemon logs: job 7 started.
    let t1 = start + TsDuration::from_secs(10);
    let t2 = start + TsDuration::from_secs(20);
    sim.append_log(0, t1, trac::grid::GridEvent::JobSubmitted { job: 7 })?;
    sim.append_log(
        0,
        t1,
        trac::grid::GridEvent::JobRouted {
            job: 7,
            target: m2.clone(),
        },
    )?;
    sim.append_log(1, t2, trac::grid::GridEvent::JobStarted { job: 7 })?;
    let session = Session::new(sim.db().clone());
    let sched_q = "SELECT jobid FROM sched WHERE schedmachineid = 'g0'";
    let run_q = "SELECT jobid FROM running WHERE runningmachineid = 'g1'";

    // State 1: neither m1 nor m2 reported in.
    let s = session.recency_report(sched_q)?;
    let r = session.recency_report(run_q)?;
    assert!(s.result.is_empty() && r.result.is_empty());

    // State 3 (paper's out-of-order case): only m2 reports. The DB shows
    // job 7 running with no record of its submission — and the report
    // shows g0's recency lagging g1's, explaining why.
    sim.pump_machine(1, t2 + TsDuration::from_secs(1))?;
    let s = session.recency_report(sched_q)?;
    let r = session.recency_report(run_q)?;
    assert!(s.result.is_empty());
    assert_eq!(r.result.rows, vec![vec![Value::Int(7)]]);
    let g0_recency = heartbeat::recency_of(&sim.db().begin_read(), m1)?.unwrap();
    let g1_recency = heartbeat::recency_of(&sim.db().begin_read(), m2)?.unwrap();
    assert!(
        g0_recency < g1_recency,
        "the report explains the anomaly: g0 ({g0_recency}) is staler than g1 ({g1_recency})"
    );

    // State 4: m1 reports too; the view becomes whole.
    sim.pump_machine(0, t2 + TsDuration::from_secs(2))?;
    let s = session.recency_report(sched_q)?;
    assert_eq!(s.result.rows, vec![vec![Value::Int(7)]]);
    Ok(())
}

/// Failed machines go quiet, and TRAC reports them as exceptional once
/// they are far enough behind the pack.
#[test]
fn failed_machine_surfaces_as_exceptional() -> Result<()> {
    // With N sources and one dead outlier, the outlier's |z| approaches
    // √(N−1); it needs N ≥ 11 to be able to exceed the threshold of 3 at
    // all, so use a pool comfortably above that.
    let mut sim = GridSim::new(GridConfig {
        n_machines: 20,
        n_schedulers: 2,
        heartbeat_secs: 30,
        sniffer_lag_secs: (1, 5),
        sniffer_period_secs: 10,
        mtbf_secs: 0, // we fail one machine by hand instead
        ..Default::default()
    })?;
    // Run the healthy pool, then freeze machine 3's sniffer by failing it.
    sim.run_for(600)?;
    sim.fail_machine(3);
    sim.run_for(4 * 3600)?;
    let session = Session::new(sim.db().clone());
    let out = session.recency_report("SELECT mach_id FROM activity")?;
    let exceptional: Vec<&str> = out
        .report
        .exceptional
        .iter()
        .map(|(s, _)| s.as_str())
        .collect();
    assert_eq!(exceptional, vec!["g3"], "the dead machine must stand out");
    // The bound of inconsistency over *normal* sources stays small.
    assert!(
        out.report.inconsistency_bound.unwrap() < TsDuration::from_secs(300),
        "normal sources are mutually close: {:?}",
        out.report.inconsistency_bound
    );
    assert_eq!(sim.machine_state(3), MachineState::Failed);
    Ok(())
}
