//! Dynamic determinism certification: the interleaving explorer run
//! against the real storage/exec/core stack.
//!
//! The `trac-analyze` concurrency pass proves TRAC016–TRAC020
//! statically; these tests re-prove the two dynamic claims by
//! exhaustively or randomly exploring bounded interleavings of the
//! morsel-driven worker pool on a single core:
//!
//! * **determinism** — parallel output is byte-identical to serial
//!   under *every* explored schedule at `threads ∈ {2, 4}`, and the
//!   explorer *does* detect the seeded dual bug (a Gather merging in
//!   completion order instead of morsel order);
//! * **report freshness** — the prepared-plan cache is *not*
//!   invalidated by heartbeat traffic (PR 8): entries persist across
//!   writes and carry delta-maintained report state instead. No
//!   schedule may exist in which a report served from maintained state
//!   is stale — a post-write report must reflect the write, and a
//!   report racing the write must land on one side of it, never
//!   between (`Site::DeltaFold` drives writes into the middle of the
//!   fold).

use std::sync::Mutex;

use trac::core::Session;
use trac::exec::schedule::{self, participate, Strategy};
use trac::exec::{execute_plan, ExecOptions};
use trac::expr::bind_select;
use trac::plan::{plan_select, PlanNode};
use trac::sql::parse_select;
use trac::storage::ReadTxn;
use trac::types::{SourceId, Timestamp};
use trac::workload::load_paper_tables;

const JOIN_SQL: &str = "SELECT A.mach_id FROM Routing R, Activity A \
     WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id";
const SCAN_SQL: &str = "SELECT mach_id FROM Activity";

fn bound_plan(txn: &ReadTxn, sql: &str, opts: ExecOptions) -> trac::plan::PhysicalPlan {
    let stmt = parse_select(sql).unwrap();
    let q = bind_select(txn, &stmt).unwrap();
    plan_select(txn, &q, opts).unwrap()
}

/// Every explored schedule of a parallel session report must produce
/// rows byte-identical to the serial baseline, at 2 and at 4 workers.
#[test]
fn parallel_session_reports_are_deterministic_under_exploration() {
    let t = load_paper_tables().unwrap();
    let baseline = Session::new(t.db.clone())
        .recency_report(JOIN_SQL)
        .unwrap()
        .result
        .rows;
    for threads in [2usize, 4] {
        let mut session = Session::new(t.db.clone());
        session.exec_options = ExecOptions::default().with_parallelism(threads, 2);
        let session = &session;
        let baseline = &baseline;
        let report = schedule::explore(
            Strategy::Random {
                seed: 0x7ac0 + threads as u64,
                schedules: 6,
            },
            |_ctl| {
                let rows = session
                    .recency_report(JOIN_SQL)
                    .map_err(|e| e.to_string())?
                    .result
                    .rows;
                if rows == *baseline {
                    Ok(())
                } else {
                    Err(format!(
                        "threads={threads}: parallel rows diverge from serial under exploration"
                    ))
                }
            },
        );
        assert!(report.is_clean(), "threads={threads}: {:?}", report.failure);
        assert_eq!(report.schedules, 6);
    }
}

/// The stock (morsel-ordered) executor survives bounded *exhaustive*
/// enumeration of worker interleavings on a plain parallel scan.
#[test]
fn stock_parallel_scan_is_clean_under_exhaustive_exploration() {
    let t = load_paper_tables().unwrap();
    let txn = t.db.begin_read();
    let serial = execute_plan(&txn, &bound_plan(&txn, SCAN_SQL, ExecOptions::default()))
        .unwrap()
        .rows;
    for threads in [2usize, 4] {
        let parallel = bound_plan(
            &txn,
            SCAN_SQL,
            ExecOptions::default().with_parallelism(threads, 1),
        );
        let report = schedule::explore(Strategy::Exhaustive { max_schedules: 48 }, |_ctl| {
            let rows = execute_plan(&txn, &parallel)
                .map_err(|e| e.to_string())?
                .rows;
            if rows == serial {
                Ok(())
            } else {
                Err(format!("threads={threads}: morsel-ordered Gather diverged"))
            }
        });
        assert!(report.is_clean(), "threads={threads}: {:?}", report.failure);
        assert!(report.schedules >= 2, "exploration must actually branch");
    }
}

/// Seeded determinism bug: flipping the Gather to completion-order
/// merging (exactly mutation `TRAC017` of the static corpus) must be
/// *detected* by the explorer — some interleaving reorders the output.
#[test]
fn explorer_detects_a_completion_order_merge() {
    let t = load_paper_tables().unwrap();
    let txn = t.db.begin_read();
    let serial = execute_plan(&txn, &bound_plan(&txn, SCAN_SQL, ExecOptions::default()))
        .unwrap()
        .rows;
    let mut buggy = bound_plan(
        &txn,
        SCAN_SQL,
        ExecOptions::default().with_parallelism(2, 1),
    );
    fn strip_merge_order(node: &mut PlanNode) {
        if let PlanNode::Gather { morsel_ordered, .. } = node {
            *morsel_ordered = false;
        }
        for child in node.children_mut() {
            strip_merge_order(child);
        }
    }
    strip_merge_order(&mut buggy.root);
    let report = schedule::explore(Strategy::Exhaustive { max_schedules: 200 }, |_ctl| {
        let rows = execute_plan(&txn, &buggy).map_err(|e| e.to_string())?.rows;
        if rows == serial {
            Ok(())
        } else {
            Err("completion-order merge produced schedule-dependent rows".into())
        }
    });
    let failure = report
        .failure
        .expect("the explorer must find an interleaving that reorders the merge");
    assert!(failure.message.contains("schedule-dependent"));
    assert!(
        !failure.choices.is_empty(),
        "the failing schedule must be replayable from its decision trace"
    );
}

/// Looks up one source's reported recency (normal or exceptional side).
fn reported_recency(report: &trac::core::RecencyReport, sid: &SourceId) -> Option<Timestamp> {
    report
        .normal
        .iter()
        .chain(report.exceptional.iter())
        .find(|(s, _)| s == sid)
        .map(|(_, t)| *t)
}

/// Report freshness: heartbeat traffic no longer invalidates the
/// prepared-plan cache — across every explored interleaving of a
/// reader session and a heartbeat writer, the cached plan must be
/// *reused* (exactly one miss), the reader's rows must stay
/// byte-identical, and the post-write report must carry the written
/// recency anyway: the delta fold, not a plan rebuild, delivers it.
#[test]
fn no_stale_report_serve_across_a_racing_heartbeat_write() {
    let t = load_paper_tables().unwrap();
    let baseline = Session::new(t.db.clone())
        .recency_report(JOIN_SQL)
        .unwrap()
        .result
        .rows;
    let db = &t.db;
    let baseline = &baseline;
    let written = Timestamp(i64::MAX / 2);
    let m1 = SourceId::new("m1");
    let report = schedule::explore(
        Strategy::Random {
            seed: 11,
            schedules: 8,
        },
        |ctl| {
            let mut session = Session::new(db.clone());
            session.exec_options = ExecOptions::default().with_parallelism(2, 2);
            let session = &session;
            // R1 fills the cache and registers maintained state.
            let r1 = session
                .recency_report(JOIN_SQL)
                .map_err(|e| e.to_string())?
                .result
                .rows;
            // R2 races the heartbeat write.
            let r2_rows: Mutex<Option<Vec<Vec<trac::types::Value>>>> = Mutex::new(None);
            let base = ctl.expect_workers(2);
            std::thread::scope(|s| {
                let ctl_r = ctl.clone();
                let r2_rows = &r2_rows;
                s.spawn(move || {
                    participate(&ctl_r, base, || {
                        let rows = session.recency_report(JOIN_SQL).unwrap().result.rows;
                        *r2_rows.lock().unwrap() = Some(rows);
                    });
                });
                let ctl_w = ctl.clone();
                let m1 = &m1;
                s.spawn(move || {
                    participate(&ctl_w, base + 1, || {
                        let txn = db.begin_write();
                        txn.heartbeat(m1, written).unwrap();
                        txn.commit();
                    });
                });
                ctl.suspend();
            });
            ctl.resume();
            // R3 runs strictly after the write. A plan rebuild here
            // would hide staleness; demand a cache hit AND freshness.
            let r3 = session
                .recency_report(JOIN_SQL)
                .map_err(|e| e.to_string())?;
            let r2 = r2_rows.lock().unwrap().take().expect("reader ran");
            for (label, rows) in [("R1", &r1), ("R2", &r2), ("R3", &r3.result.rows)] {
                if rows != baseline {
                    return Err(format!("{label} rows diverged from the serial baseline"));
                }
            }
            let stats = session.plan_cache_stats();
            if stats.misses != 1 {
                return Err(format!(
                    "heartbeat write invalidated the plan cache: {} misses (hits={})",
                    stats.misses, stats.hits
                ));
            }
            match reported_recency(&r3.report, &m1) {
                Some(ts) if ts == written => {}
                other => {
                    return Err(format!(
                        "stale report serve: post-write report has m1 at {other:?}, \
                         expected {written:?}"
                    ))
                }
            }
            let ms = session.maintenance_stats();
            if ms.registrations != 1 || ms.delta_serves + ms.rescan_serves != 2 {
                return Err(format!("unexpected maintenance accounting: {ms:?}"));
            }
            Ok(())
        },
    );
    assert!(report.is_clean(), "{:?}", report.failure);
    assert_eq!(report.schedules, 8);
}

/// Report-mid-fold schedule: `Site::DeltaFold` yields right before a
/// report folds the change stream, so the explorer can land a
/// heartbeat write exactly between the cache checkout and the fold.
/// Under every such interleaving the racing report must observe either
/// the pre-write or the post-write recency — never a mix — and a
/// report strictly after the write must observe the written value.
#[test]
fn delta_fold_racing_a_heartbeat_write_stays_snapshot_consistent() {
    let t = load_paper_tables().unwrap();
    let db = &t.db;
    let m2 = SourceId::new("m2");
    // A fresh target timestamp per schedule, so "fresh" is always
    // distinguishable from the previous schedule's leftovers.
    let tick = Mutex::new(0i64);
    let report = schedule::explore(
        Strategy::Random {
            seed: 29,
            schedules: 8,
        },
        |ctl| {
            let written = {
                let mut n = tick.lock().unwrap();
                *n += 1;
                // Far past the loaded 2006 heartbeats, so the monotone
                // upsert actually advances m2 each schedule.
                Timestamp::from_micros(8_000_000_000_000_000 + *n)
            };
            let session = Session::new(db.clone());
            let session = &session;
            // R1 registers the maintained state (serial exec: the only
            // explored decision points are the fold and the writer).
            let r1 = session
                .recency_report(SCAN_SQL)
                .map_err(|e| e.to_string())?;
            let pre = reported_recency(&r1.report, &m2).ok_or("m2 missing from R1")?;
            let racing: Mutex<Option<Option<Timestamp>>> = Mutex::new(None);
            let base = ctl.expect_workers(2);
            let m2 = &m2;
            std::thread::scope(|s| {
                let ctl_r = ctl.clone();
                let racing = &racing;
                s.spawn(move || {
                    participate(&ctl_r, base, || {
                        let out = session.recency_report(SCAN_SQL).unwrap();
                        *racing.lock().unwrap() = Some(reported_recency(&out.report, m2));
                    });
                });
                let ctl_w = ctl.clone();
                s.spawn(move || {
                    participate(&ctl_w, base + 1, || {
                        let txn = db.begin_write();
                        txn.heartbeat(m2, written).unwrap();
                        txn.commit();
                    });
                });
                ctl.suspend();
            });
            ctl.resume();
            let seen = racing
                .lock()
                .unwrap()
                .take()
                .expect("reader ran")
                .ok_or("m2 missing from the racing report")?;
            if seen != pre && seen != written {
                return Err(format!(
                    "racing report saw m2 at {seen:?}: neither pre-write \
                     ({pre:?}) nor post-write ({written:?})"
                ));
            }
            let r3 = session
                .recency_report(SCAN_SQL)
                .map_err(|e| e.to_string())?;
            match reported_recency(&r3.report, m2) {
                Some(ts) if ts == written => Ok(()),
                other => Err(format!(
                    "post-write report has m2 at {other:?}, expected {written:?}"
                )),
            }
        },
    );
    assert!(report.is_clean(), "{:?}", report.failure);
    assert_eq!(report.schedules, 8);
}
