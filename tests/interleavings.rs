//! Dynamic determinism certification: the interleaving explorer run
//! against the real storage/exec/core stack.
//!
//! The `trac-analyze` concurrency pass proves TRAC016–TRAC020
//! statically; these tests re-prove the two dynamic claims by
//! exhaustively or randomly exploring bounded interleavings of the
//! morsel-driven worker pool on a single core:
//!
//! * **determinism** — parallel output is byte-identical to serial
//!   under *every* explored schedule at `threads ∈ {2, 4}`, and the
//!   explorer *does* detect the seeded dual bug (a Gather merging in
//!   completion order instead of morsel order);
//! * **cache soundness** — no schedule exists in which the prepared-plan
//!   cache serves a plan built before an invalidating heartbeat write
//!   (the write bumps the epoch the cache is keyed on, so the
//!   post-write report must rebuild).

use std::sync::Mutex;

use trac::core::Session;
use trac::exec::schedule::{self, participate, Strategy};
use trac::exec::{execute_plan, ExecOptions};
use trac::expr::bind_select;
use trac::plan::{plan_select, PlanNode};
use trac::sql::parse_select;
use trac::storage::ReadTxn;
use trac::types::{SourceId, Timestamp};
use trac::workload::load_paper_tables;

const JOIN_SQL: &str = "SELECT A.mach_id FROM Routing R, Activity A \
     WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id";
const SCAN_SQL: &str = "SELECT mach_id FROM Activity";

fn bound_plan(txn: &ReadTxn, sql: &str, opts: ExecOptions) -> trac::plan::PhysicalPlan {
    let stmt = parse_select(sql).unwrap();
    let q = bind_select(txn, &stmt).unwrap();
    plan_select(txn, &q, opts).unwrap()
}

/// Every explored schedule of a parallel session report must produce
/// rows byte-identical to the serial baseline, at 2 and at 4 workers.
#[test]
fn parallel_session_reports_are_deterministic_under_exploration() {
    let t = load_paper_tables().unwrap();
    let baseline = Session::new(t.db.clone())
        .recency_report(JOIN_SQL)
        .unwrap()
        .result
        .rows;
    for threads in [2usize, 4] {
        let mut session = Session::new(t.db.clone());
        session.exec_options = ExecOptions::default().with_parallelism(threads, 2);
        let session = &session;
        let baseline = &baseline;
        let report = schedule::explore(
            Strategy::Random {
                seed: 0x7ac0 + threads as u64,
                schedules: 6,
            },
            |_ctl| {
                let rows = session
                    .recency_report(JOIN_SQL)
                    .map_err(|e| e.to_string())?
                    .result
                    .rows;
                if rows == *baseline {
                    Ok(())
                } else {
                    Err(format!(
                        "threads={threads}: parallel rows diverge from serial under exploration"
                    ))
                }
            },
        );
        assert!(report.is_clean(), "threads={threads}: {:?}", report.failure);
        assert_eq!(report.schedules, 6);
    }
}

/// The stock (morsel-ordered) executor survives bounded *exhaustive*
/// enumeration of worker interleavings on a plain parallel scan.
#[test]
fn stock_parallel_scan_is_clean_under_exhaustive_exploration() {
    let t = load_paper_tables().unwrap();
    let txn = t.db.begin_read();
    let serial = execute_plan(&txn, &bound_plan(&txn, SCAN_SQL, ExecOptions::default()))
        .unwrap()
        .rows;
    for threads in [2usize, 4] {
        let parallel = bound_plan(
            &txn,
            SCAN_SQL,
            ExecOptions::default().with_parallelism(threads, 1),
        );
        let report = schedule::explore(Strategy::Exhaustive { max_schedules: 48 }, |_ctl| {
            let rows = execute_plan(&txn, &parallel)
                .map_err(|e| e.to_string())?
                .rows;
            if rows == serial {
                Ok(())
            } else {
                Err(format!("threads={threads}: morsel-ordered Gather diverged"))
            }
        });
        assert!(report.is_clean(), "threads={threads}: {:?}", report.failure);
        assert!(report.schedules >= 2, "exploration must actually branch");
    }
}

/// Seeded determinism bug: flipping the Gather to completion-order
/// merging (exactly mutation `TRAC017` of the static corpus) must be
/// *detected* by the explorer — some interleaving reorders the output.
#[test]
fn explorer_detects_a_completion_order_merge() {
    let t = load_paper_tables().unwrap();
    let txn = t.db.begin_read();
    let serial = execute_plan(&txn, &bound_plan(&txn, SCAN_SQL, ExecOptions::default()))
        .unwrap()
        .rows;
    let mut buggy = bound_plan(
        &txn,
        SCAN_SQL,
        ExecOptions::default().with_parallelism(2, 1),
    );
    fn strip_merge_order(node: &mut PlanNode) {
        if let PlanNode::Gather { morsel_ordered, .. } = node {
            *morsel_ordered = false;
        }
        for child in node.children_mut() {
            strip_merge_order(child);
        }
    }
    strip_merge_order(&mut buggy.root);
    let report = schedule::explore(Strategy::Exhaustive { max_schedules: 200 }, |_ctl| {
        let rows = execute_plan(&txn, &buggy).map_err(|e| e.to_string())?.rows;
        if rows == serial {
            Ok(())
        } else {
            Err("completion-order merge produced schedule-dependent rows".into())
        }
    });
    let failure = report
        .failure
        .expect("the explorer must find an interleaving that reorders the merge");
    assert!(failure.message.contains("schedule-dependent"));
    assert!(
        !failure.choices.is_empty(),
        "the failing schedule must be replayable from its decision trace"
    );
}

/// Cache soundness: across every explored interleaving of a reader
/// session and an invalidating heartbeat writer, the post-write report
/// must rebuild its plan (epoch key moved), never serve the pre-write
/// one. The reader's rows stay byte-identical throughout — the write
/// only touches recency metadata.
#[test]
fn no_stale_cache_serve_after_an_invalidating_write() {
    let t = load_paper_tables().unwrap();
    let baseline = Session::new(t.db.clone())
        .recency_report(JOIN_SQL)
        .unwrap()
        .result
        .rows;
    let db = &t.db;
    let baseline = &baseline;
    let report = schedule::explore(
        Strategy::Random {
            seed: 11,
            schedules: 8,
        },
        |ctl| {
            let mut session = Session::new(db.clone());
            session.exec_options = ExecOptions::default().with_parallelism(2, 2);
            let session = &session;
            // R1 fills the cache at the pre-write epoch.
            let r1 = session
                .recency_report(JOIN_SQL)
                .map_err(|e| e.to_string())?
                .result
                .rows;
            // R2 races the invalidating write.
            let r2_rows: Mutex<Option<Vec<Vec<trac::types::Value>>>> = Mutex::new(None);
            let base = ctl.expect_workers(2);
            std::thread::scope(|s| {
                let ctl_r = ctl.clone();
                let r2_rows = &r2_rows;
                s.spawn(move || {
                    participate(&ctl_r, base, || {
                        let rows = session.recency_report(JOIN_SQL).unwrap().result.rows;
                        *r2_rows.lock().unwrap() = Some(rows);
                    });
                });
                let ctl_w = ctl.clone();
                s.spawn(move || {
                    participate(&ctl_w, base + 1, || {
                        let txn = db.begin_write();
                        txn.heartbeat(&SourceId::new("m1"), Timestamp(i64::MAX / 2))
                            .unwrap();
                        txn.commit();
                    });
                });
                ctl.suspend();
            });
            ctl.resume();
            // R3 runs strictly after the write: its epoch differs from
            // R1's, so a cache hit here would be a stale serve.
            let r3 = session
                .recency_report(JOIN_SQL)
                .map_err(|e| e.to_string())?
                .result
                .rows;
            let r2 = r2_rows.lock().unwrap().take().expect("reader ran");
            for (label, rows) in [("R1", &r1), ("R2", &r2), ("R3", &r3)] {
                if rows != baseline {
                    return Err(format!("{label} rows diverged from the serial baseline"));
                }
            }
            let stats = session.plan_cache_stats();
            // R1 always misses; R3 must miss again because the write
            // moved the epoch (R2 may land on either side). A single
            // miss would mean R3 was served the stale pre-write plan.
            if stats.misses < 2 {
                return Err(format!(
                    "stale cache serve: only {} plan-cache miss(es) across an \
                     invalidating write (hits={})",
                    stats.misses, stats.hits
                ));
            }
            Ok(())
        },
    );
    assert!(report.is_clean(), "{:?}", report.failure);
    assert_eq!(report.schedules, 8);
}
