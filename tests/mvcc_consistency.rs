//! Snapshot-consistency under concurrency: the paper's first guiding
//! requirement (Section 3.2) says the recency information must be
//! transactionally consistent with the user query result. Here writer
//! threads continuously ingest correlated updates while reader threads
//! take recency reports; any torn read would surface as a report whose
//! result and recency disagree.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use trac::core::Session;
use trac::storage::{ColumnDef, Database, TableSchema};
use trac::types::{ColumnDomain, DataType, SourceId, Timestamp, Value};

fn setup() -> Database {
    let db = Database::new();
    db.create_table(
        TableSchema::new(
            "counter",
            vec![
                ColumnDef::new("sid", DataType::Text)
                    .with_domain(ColumnDomain::text_set(["w1", "w2"])),
                ColumnDef::new("n", DataType::Int),
                ColumnDef::new("stamp", DataType::Timestamp),
            ],
            Some("sid"),
        )
        .unwrap(),
    )
    .unwrap();
    db.create_index("counter", "sid").unwrap();
    db
}

/// Invariant maintained by writers: each source's row count equals the
/// number of committed ingests, and its heartbeat equals the timestamp of
/// its newest row. A consistent snapshot must observe both or neither.
#[test]
fn reports_never_tear_across_writers() {
    let db = setup();
    let tid = db.begin_read().table_id("counter").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in ["w1", "w2"] {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let src = SourceId::new(w);
            let mut i: i64 = 0;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let ts = Timestamp::from_secs(i);
                db.with_write(|txn| {
                    txn.ingest(
                        &src,
                        tid,
                        vec![Value::text(w), Value::Int(i), Value::Timestamp(ts)],
                        ts,
                    )
                })
                .unwrap();
            }
            i
        }));
    }

    let session = Session::new(db.clone());
    let mut checked = 0;
    for _ in 0..200 {
        let out = session
            .recency_report("SELECT MAX(stamp) AS newest FROM counter WHERE sid = 'w1'")
            .err();
        assert!(out.is_none(), "report failed: {out:?}");
        // Stronger check through the raw snapshot: count, max stamp and
        // heartbeat must agree within one snapshot.
        let txn = db.begin_read();
        for w in ["w1", "w2"] {
            let rows = txn
                .index_probe_in(tid, 0, &[Value::text(w)])
                .unwrap()
                .unwrap();
            let hb = trac::storage::heartbeat::recency_of(&txn, &SourceId::new(w)).unwrap();
            if rows.is_empty() {
                continue;
            }
            let max_n = rows.iter().filter_map(|r| r[1].as_int()).max().unwrap();
            let max_stamp = rows
                .iter()
                .filter_map(|r| r[2].as_timestamp())
                .max()
                .unwrap();
            checked += 1;
            assert_eq!(
                rows.len() as i64,
                max_n,
                "{w}: snapshot saw {} rows but counter {max_n}",
                rows.len()
            );
            assert_eq!(
                hb,
                Some(max_stamp),
                "{w}: heartbeat {hb:?} disagrees with newest row {max_stamp}"
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    for t in writers {
        let n = t.join().unwrap();
        assert!(n > 0, "writer made progress");
    }
    assert!(checked > 0, "reader actually observed data");
}

/// Report outputs are internally consistent: every source in the user
/// query's rows is covered by the report (for a query whose relevant set
/// is all sources of the table).
#[test]
fn report_covers_result_sources_under_churn() {
    let db = setup();
    let tid = db.begin_read().table_id("counter").unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let w = if i % 2 == 0 { "w1" } else { "w2" };
                let ts = Timestamp::from_secs(i);
                db.with_write(|txn| {
                    txn.ingest(
                        &SourceId::new(w),
                        tid,
                        vec![Value::text(w), Value::Int(i), Value::Timestamp(ts)],
                        ts,
                    )
                })
                .unwrap();
            }
        })
    };
    let session = Session::new(db.clone());
    for _ in 0..100 {
        let out = session
            .recency_report("SELECT sid FROM counter WHERE n > 0")
            .unwrap();
        let reported: std::collections::BTreeSet<&str> = out
            .report
            .normal
            .iter()
            .chain(&out.report.exceptional)
            .map(|(s, _)| s.as_str())
            .collect();
        for row in &out.result.rows {
            let sid = row[0].as_text().unwrap();
            assert!(
                reported.contains(sid),
                "result row from {sid} but report covers {reported:?}"
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// Write-write conflicts abort cleanly and never corrupt visible state.
#[test]
fn conflicting_heartbeat_upserts_are_serializable() {
    let db = setup();
    let src = SourceId::new("w1");
    db.with_write(|w| w.heartbeat(&src, Timestamp::from_secs(1)))
        .unwrap();
    let mut handles = Vec::new();
    for k in 0..8 {
        let db = db.clone();
        let src = src.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                // Conflicts on the single heartbeat row are expected;
                // losers abort and retry.
                loop {
                    let txn = db.begin_write();
                    match txn.heartbeat(&src, Timestamp::from_secs(2 + k * 50 + i)) {
                        Ok(()) => {
                            txn.commit();
                            break;
                        }
                        Err(e) => {
                            assert_eq!(e.kind(), "txn_aborted", "unexpected: {e}");
                            txn.abort();
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let txn = db.begin_read();
    let hb = trac::storage::heartbeat::recency_of(&txn, &src).unwrap();
    // Monotone outcome: the maximum of all attempted stamps.
    assert_eq!(hb, Some(Timestamp::from_secs(2 + 7 * 50 + 49)));
    // Exactly one visible heartbeat row.
    let hbt = txn.table_id("heartbeat").unwrap();
    assert_eq!(txn.scan(hbt).unwrap().len(), 1);
}
