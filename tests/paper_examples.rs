//! End-to-end reproduction of every worked example in the paper.
//!
//! * Section 4.1.1, query `Q_1` over Table 1 — Theorem 3 minimum.
//! * Section 4.1.2, query `Q_2` over Tables 1 & 2 — Theorem 4 /
//!   Corollary 5 semijoins, `S(Q2,R) = {m1}`, `S(Q2,A) = {m3}`.
//! * Section 4.1.2's closing sequence-of-updates counterexample.
//! * Section 4.2's Q3/Q4 semantics-vs-recency cases (a), (b), (c).
//! * Section 5.1's prototype session (m2 exceptional, bound `00:20:00`).

use trac::core::oracle::{relevant_sources_oracle, relevant_sources_oracle_via};
use trac::core::relevance::SubqueryStatus;
use trac::core::{Guarantee, RecencyPlan, RelevanceConfig, Session};
use trac::exec::{execute_sql, execute_statement};
use trac::expr::bind_select;
use trac::sql::parse_select;
use trac::storage::Database;
use trac::types::{SourceId, Timestamp, TsDuration, Value};
use trac::workload::{load_paper_tables, load_section_42_tables};

fn relevant(db: &Database, sql: &str) -> (RecencyPlan, Vec<String>) {
    let txn = db.begin_read();
    let stmt = parse_select(sql).unwrap();
    let bound = bind_select(&txn, &stmt).unwrap();
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default()).unwrap();
    let sources = plan.execute(&txn).unwrap();
    (plan, sources.into_iter().map(|s| s.0).collect())
}

fn oracle_names(db: &Database, sql: &str) -> Vec<String> {
    let txn = db.begin_read();
    let stmt = parse_select(sql).unwrap();
    let bound = bind_select(&txn, &stmt).unwrap();
    relevant_sources_oracle(&txn, &bound, 50_000_000)
        .unwrap()
        .into_iter()
        .map(|s| s.0)
        .collect()
}

const Q2: &str = "SELECT A.mach_id FROM Routing R, Activity A \
                  WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id";

#[test]
fn section_411_q1_example() {
    let t = load_paper_tables().unwrap();
    let sql = "SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'";
    // The query result: only m1 (m2 is busy).
    let r = execute_sql(&t.db.begin_read(), sql).unwrap();
    assert_eq!(r.rows, vec![vec![Value::text("m1")]]);
    // Relevant sources: exactly {m1, m2}, a guaranteed minimum.
    let (plan, sources) = relevant(&t.db, sql);
    assert_eq!(plan.guarantee, Guarantee::Minimum);
    assert_eq!(sources, vec!["m1", "m2"]);
    assert_eq!(oracle_names(&t.db, sql), vec!["m1", "m2"]);
}

#[test]
fn section_412_q2_example() {
    let t = load_paper_tables().unwrap();
    // Query result: m3 (the one neighbor of m1, and it is idle).
    let r = execute_sql(&t.db.begin_read(), Q2).unwrap();
    assert_eq!(r.rows, vec![vec![Value::text("m3")]]);
    // Paper: S(Q2,R) = {m1}, S(Q2,A) = {m3}; the generated queries find
    // exactly these (the via-R upper bound happens to be exact here).
    let (plan, sources) = relevant(&t.db, Q2);
    assert_eq!(sources, vec!["m1", "m3"]);
    let via_r = plan
        .subqueries
        .iter()
        .find(|s| s.via_relation == "R")
        .unwrap();
    let via_a = plan
        .subqueries
        .iter()
        .find(|s| s.via_relation == "A")
        .unwrap();
    assert_eq!(via_r.status, SubqueryStatus::UpperBound); // J_rm present
    assert_eq!(via_a.status, SubqueryStatus::Minimum); // Theorem 4
                                                       // Ground truth decomposition matches the paper exactly.
    let txn = t.db.begin_read();
    let bound = bind_select(&txn, &parse_select(Q2).unwrap()).unwrap();
    let via_r_truth = relevant_sources_oracle_via(&txn, &bound, 0, 50_000_000).unwrap();
    let via_a_truth = relevant_sources_oracle_via(&txn, &bound, 1, 50_000_000).unwrap();
    assert_eq!(
        via_r_truth.into_iter().map(|s| s.0).collect::<Vec<_>>(),
        vec!["m1"]
    );
    assert_eq!(
        via_a_truth.into_iter().map(|s| s.0).collect::<Vec<_>>(),
        vec!["m3"]
    );
}

#[test]
fn section_412_sequence_of_updates_counterexample() {
    let t = load_paper_tables().unwrap();
    // All machines busy: no single update from m1/m2 can change Q2.
    execute_statement(&t.db, "UPDATE Activity SET value = 'busy'").unwrap();
    let (_, sources) = relevant(&t.db, Q2);
    assert_eq!(sources, vec!["m3"]);
    assert_eq!(oracle_names(&t.db, Q2), vec!["m3"]);
    let before = execute_sql(&t.db.begin_read(), Q2).unwrap();
    assert!(before.is_empty());
    // First update: m1 reports idle — makes m1 relevant via Routing…
    execute_statement(
        &t.db,
        "UPDATE Activity SET value = 'idle' WHERE mach_id = 'm1'",
    )
    .unwrap();
    let after_first = execute_sql(&t.db.begin_read(), Q2).unwrap();
    assert!(
        after_first.is_empty(),
        "one update must not change the result"
    );
    assert!(oracle_names(&t.db, Q2).contains(&"m1".to_string()));
    // …second update: m1 becomes its own neighbor — result changes.
    execute_statement(
        &t.db,
        "INSERT INTO Routing VALUES ('m1', 'm1', TIMESTAMP '2006-03-13 00:00:00')",
    )
    .unwrap();
    let after_second = execute_sql(&t.db.begin_read(), Q2).unwrap();
    assert_eq!(after_second.rows, vec![vec![Value::text("m1")]]);
}

#[test]
fn section_42_query_semantics_cases() {
    let t = load_section_42_tables(&["myScheduler", "mx", "my"]).unwrap();
    // A stale conflicting R row keeps the other relation non-empty, as in
    // the paper's narrative.
    execute_statement(&t.db, "INSERT INTO R VALUES ('my', 1)").unwrap();
    let q3 = "SELECT R.runningMachineId FROM R WHERE R.jobId = 1";
    let q4 = "SELECT R.runningMachineId FROM S, R \
              WHERE S.schedMachineId = 'myScheduler' AND S.jobId = 1 \
              AND R.jobId = 1 AND R.runningMachineId = S.remoteMachineId";
    // Q3: all machines are always relevant.
    let (_, s3) = relevant(&t.db, q3);
    assert_eq!(s3, vec!["mx", "my", "myScheduler"]);
    // Case (a): nothing in S for the job ⇒ only myScheduler.
    let (_, s4) = relevant(&t.db, q4);
    assert_eq!(s4, vec!["myScheduler"]);
    // Case (b): S row exists but doesn't join ⇒ {myScheduler, mx}.
    execute_statement(&t.db, "INSERT INTO S VALUES ('myScheduler', 1, 'mx')").unwrap();
    let r = execute_sql(&t.db.begin_read(), q4).unwrap();
    assert!(r.is_empty());
    let (_, s4) = relevant(&t.db, q4);
    assert_eq!(s4, vec!["mx", "myScheduler"]);
    // Case (c): mx reports ⇒ result found, same relevant pair.
    execute_statement(&t.db, "INSERT INTO R VALUES ('mx', 1)").unwrap();
    let r = execute_sql(&t.db.begin_read(), q4).unwrap();
    assert_eq!(r.rows, vec![vec![Value::text("mx")]]);
    let (_, s4) = relevant(&t.db, q4);
    assert_eq!(s4, vec!["mx", "myScheduler"]);
}

#[test]
fn section_51_prototype_session() {
    // Eleven machines; m2 a month stale. The paper's transcript numbers.
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE Activity (mach_id TEXT NOT NULL, value TEXT NOT NULL, \
         event_time TIMESTAMP NOT NULL) SOURCE COLUMN mach_id",
    )
    .unwrap();
    db.create_index("Activity", "mach_id").unwrap();
    let activity = db.begin_read().table_id("activity").unwrap();
    let base = Timestamp::parse("2006-03-15 14:20:05").unwrap();
    db.with_write(|w| {
        let ingest = |m: &str, v: &str, ts: Timestamp| {
            w.ingest(
                &SourceId::new(m),
                activity,
                vec![Value::text(m), Value::text(v), Value::Timestamp(ts)],
                ts,
            )
        };
        ingest("m1", "idle", base)?;
        ingest("m2", "busy", Timestamp::parse("2006-02-12 17:23:00")?)?;
        ingest("m3", "idle", Timestamp::parse("2006-03-15 14:40:05")?)?;
        for i in 4..=11 {
            ingest(
                &format!("m{i}"),
                "busy",
                base + TsDuration::from_mins(i - 3),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let session = Session::new(db);
    let out = session
        .recency_report("SELECT mach_id, value FROM Activity A WHERE value = 'idle'")
        .unwrap();
    // Result: m1 and m3 idle (2 rows).
    assert_eq!(out.result.len(), 2);
    // NOTICEs: m2 exceptional; least recent m1 @ 14:20:05; most recent
    // m3 @ 14:40:05; bound of inconsistency 00:20:00; 10 normal sources.
    assert_eq!(out.report.exceptional.len(), 1);
    assert_eq!(out.report.exceptional[0].0.as_str(), "m2");
    assert_eq!(out.report.normal.len(), 10);
    let (ls, lt) = out.report.least_recent.clone().unwrap();
    assert_eq!(
        (ls.as_str(), lt.to_string().as_str()),
        ("m1", "2006-03-15 14:20:05")
    );
    let (ms, mt) = out.report.most_recent.clone().unwrap();
    assert_eq!(
        (ms.as_str(), mt.to_string().as_str()),
        ("m3", "2006-03-15 14:40:05")
    );
    assert_eq!(
        out.report.inconsistency_bound.unwrap().to_string(),
        "00:20:00"
    );
    // The temp tables hold the same split and are queryable.
    let e = session
        .query(&format!("SELECT sid FROM {}", out.exceptional_table))
        .unwrap();
    assert_eq!(e.rows, vec![vec![Value::text("m2")]]);
    let a = session
        .query(&format!("SELECT COUNT(*) FROM {}", out.normal_table))
        .unwrap();
    assert_eq!(a.scalar(), Some(&Value::Int(10)));
}
