//! Property-based validation of the paper's formal claims.
//!
//! For randomized small databases and randomized SPJ predicates:
//!
//! * **Completeness** (guiding requirement 2): the computed set `A(Q)`
//!   always contains the brute-force `S(Q)`.
//! * **Minimality** (Theorems 3 & 4): whenever the analyzer *claims*
//!   `Minimum`, `A(Q) = S(Q)` exactly.
//! * **Theorem 1**: inserting any single tuple from a source outside
//!   `S(Q)` never changes the query result.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trac::core::oracle::relevant_sources_oracle;
use trac::core::{Guarantee, RecencyPlan, RelevanceConfig};
use trac::exec::execute_select;
use trac::expr::bind_select;
use trac::sql::parse_select;
use trac::storage::{ColumnDef, Database, TableSchema};
use trac::types::{ColumnDomain, DataType, SourceId, Timestamp, Value};

const MACHINES: [&str; 3] = ["m1", "m2", "m3"];
const STATES: [&str; 2] = ["idle", "busy"];

/// Builds the two-table schema with fully finite domains (the oracle
/// needs them) and the given instance data.
fn build_db(activity: &[(usize, usize)], routing: &[(usize, usize)]) -> Database {
    let db = Database::new();
    let machines = ColumnDomain::text_set(MACHINES);
    let t0 = Timestamp::from_secs(0);
    db.create_table(
        TableSchema::new(
            "activity",
            vec![
                ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
                ColumnDef::new("value", DataType::Text).with_domain(ColumnDomain::text_set(STATES)),
            ],
            Some("mach_id"),
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "routing",
            vec![
                ColumnDef::new("mach_id", DataType::Text).with_domain(machines.clone()),
                ColumnDef::new("neighbor", DataType::Text).with_domain(machines),
            ],
            Some("mach_id"),
        )
        .unwrap(),
    )
    .unwrap();
    db.create_index("activity", "mach_id").unwrap();
    db.create_index("routing", "mach_id").unwrap();
    let a = db.begin_read().table_id("activity").unwrap();
    let r = db.begin_read().table_id("routing").unwrap();
    db.with_write(|w| {
        for m in MACHINES {
            w.heartbeat(&SourceId::new(m), t0)?;
        }
        for &(m, v) in activity {
            w.insert(a, vec![Value::text(MACHINES[m]), Value::text(STATES[v])])?;
        }
        for &(m, n) in routing {
            w.insert(r, vec![Value::text(MACHINES[m]), Value::text(MACHINES[n])])?;
        }
        Ok(())
    })
    .unwrap();
    db
}

/// A random basic term over the joined (A, R) schema.
fn term_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (0..3usize).prop_map(|m| format!("A.mach_id = '{}'", MACHINES[m])),
        (0..2usize).prop_map(|v| format!("A.value = '{}'", STATES[v])),
        (0..3usize).prop_map(|m| format!("R.mach_id = '{}'", MACHINES[m])),
        (0..3usize).prop_map(|m| format!("R.neighbor = '{}'", MACHINES[m])),
        Just("R.neighbor = A.mach_id".to_string()),
        Just("R.mach_id = A.mach_id".to_string()),
        proptest::sample::subsequence(vec!["m1", "m2", "m3"], 1..=3)
            .prop_map(|ms| format!("A.mach_id IN ('{}')", ms.join("','"))),
        (0..3usize).prop_map(|m| format!("A.mach_id <> '{}'", MACHINES[m])),
    ]
}

/// Random predicates: conjunctions/disjunctions/negations of basic terms.
fn predicate_strategy() -> impl Strategy<Value = String> {
    let leaf = term_strategy();
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

/// Random single-relation predicates (no R references).
fn single_predicate_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0..3usize).prop_map(|m| format!("mach_id = '{}'", MACHINES[m])),
        (0..2usize).prop_map(|v| format!("value = '{}'", STATES[v])),
        proptest::sample::subsequence(vec!["m1", "m2", "m3"], 1..=3)
            .prop_map(|ms| format!("mach_id NOT IN ('{}')", ms.join("','"))),
        Just("mach_id = value".to_string()), // mixed predicate
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    })
}

fn activity_rows(max: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..3usize, 0..2usize), 0..max)
}

fn routing_rows(max: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..3usize, 0..3usize), 0..max)
}

/// Runs all three checks for one (database, query) pair.
fn check_all(db: &Database, sql: &str) -> std::result::Result<(), TestCaseError> {
    let txn = db.begin_read();
    let stmt = parse_select(sql).map_err(|e| TestCaseError::fail(e.to_string()))?;
    let bound = bind_select(&txn, &stmt).map_err(|e| TestCaseError::fail(e.to_string()))?;
    let truth = relevant_sources_oracle(&txn, &bound, 50_000_000)
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default())
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    let computed = plan
        .execute(&txn)
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    // Completeness.
    prop_assert!(
        computed.is_superset(&truth),
        "completeness violated for {sql}: computed {computed:?} truth {truth:?}"
    );
    // Minimality when claimed.
    if plan.guarantee == Guarantee::Minimum {
        prop_assert_eq!(
            &computed,
            &truth,
            "claimed minimum but imprecise for {}",
            sql
        );
    }
    // Theorem 1: single updates from non-relevant sources don't change
    // the result.
    let baseline = {
        let mut rows = execute_select(&txn, &bound)
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .rows;
        rows.sort();
        rows
    };
    let irrelevant: BTreeSet<&str> = MACHINES
        .iter()
        .copied()
        .filter(|m| !truth.contains(&SourceId::new(*m)))
        .collect();
    for m in irrelevant {
        for rel in 0..bound.tables.len() {
            let bt = &bound.tables[rel];
            let domains: Vec<Vec<Value>> = bt
                .schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if bt.schema.source_column == Some(i) {
                        vec![Value::text(m)]
                    } else {
                        c.domain.enumerate(16).expect("finite test domains")
                    }
                })
                .collect();
            // Cross product of the (tiny) domains.
            let mut stack = vec![Vec::new()];
            for d in &domains {
                let mut next = Vec::with_capacity(stack.len() * d.len());
                for partial in &stack {
                    for v in d {
                        let mut row: Vec<Value> = partial.clone();
                        row.push(v.clone());
                        next.push(row);
                    }
                }
                stack = next;
            }
            for row in stack {
                let w = db.begin_write();
                w.insert(bt.id, row.clone())
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                // Evaluate within the txn's own uncommitted view.
                let mut rows = execute_select(&w, &bound)
                    .map_err(|e| TestCaseError::fail(e.to_string()))?
                    .rows;
                rows.sort();
                prop_assert_eq!(
                    &rows,
                    &baseline,
                    "Theorem 1 violated for {}: tuple {:?} from irrelevant {} changed the result",
                    sql,
                    row,
                    m
                );
                w.abort();
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn single_relation_properties(
        activity in activity_rows(8),
        pred in single_predicate_strategy(),
    ) {
        let db = build_db(&activity, &[]);
        let sql = format!("SELECT mach_id FROM Activity WHERE {pred}");
        check_all(&db, &sql)?;
    }

    #[test]
    fn multi_relation_properties(
        activity in activity_rows(6),
        routing in routing_rows(5),
        pred in predicate_strategy(),
    ) {
        let db = build_db(&activity, &routing);
        let sql = format!(
            "SELECT A.mach_id FROM Routing R, Activity A WHERE {pred}"
        );
        check_all(&db, &sql)?;
    }

    #[test]
    fn no_predicate_multi_relation(
        activity in activity_rows(4),
        routing in routing_rows(4),
    ) {
        let db = build_db(&activity, &routing);
        check_all(&db, "SELECT A.mach_id FROM Routing R, Activity A")?;
    }
}
