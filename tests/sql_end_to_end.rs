//! SQL end-to-end and differential-execution tests.
//!
//! Random SPJ queries over random instances must produce identical
//! results under every planner configuration (index probes on/off, hash
//! joins on/off) — the access path is an optimization, never a semantic
//! change.

use proptest::prelude::*;
use trac::exec::{execute_select_with, execute_statement, ExecOptions, StatementResult};
use trac::expr::bind_select;
use trac::sql::parse_select;
use trac::storage::Database;
use trac::types::Value;

fn setup(activity: &[(usize, usize)], routing: &[(usize, usize)]) -> Database {
    const M: [&str; 4] = ["m1", "m2", "m3", "m4"];
    const V: [&str; 2] = ["idle", "busy"];
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE activity (mach_id TEXT NOT NULL, value TEXT NOT NULL) \
         SOURCE COLUMN mach_id",
    )
    .unwrap();
    execute_statement(
        &db,
        "CREATE TABLE routing (mach_id TEXT NOT NULL, neighbor TEXT NOT NULL) \
         SOURCE COLUMN mach_id",
    )
    .unwrap();
    execute_statement(&db, "CREATE INDEX ai ON activity (mach_id)").unwrap();
    execute_statement(&db, "CREATE INDEX ri ON routing (mach_id)").unwrap();
    for &(m, v) in activity {
        execute_statement(
            &db,
            &format!("INSERT INTO activity VALUES ('{}', '{}')", M[m], V[v]),
        )
        .unwrap();
    }
    for &(m, n) in routing {
        execute_statement(
            &db,
            &format!("INSERT INTO routing VALUES ('{}', '{}')", M[m], M[n]),
        )
        .unwrap();
    }
    db
}

fn query_strategy() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        (0..4usize).prop_map(|m| format!("A.mach_id = 'm{}'", m + 1)),
        (0..2usize).prop_map(|v| format!("A.value = '{}'", if v == 0 { "idle" } else { "busy" })),
        (0..4usize).prop_map(|m| format!("R.neighbor = 'm{}'", m + 1)),
        Just("R.neighbor = A.mach_id".to_string()),
        Just("R.mach_id = A.mach_id".to_string()),
        (0..4usize).prop_map(|m| format!("A.mach_id <> 'm{}'", m + 1)),
        Just("A.mach_id IN ('m1', 'm3')".to_string()),
    ];
    let pred = term.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
            inner.prop_map(|a| format!("NOT ({a})")),
        ]
    });
    (pred, any::<bool>()).prop_map(|(p, agg)| {
        if agg {
            format!("SELECT COUNT(*) FROM routing R, activity A WHERE {p}")
        } else {
            format!("SELECT A.mach_id, R.neighbor FROM routing R, activity A WHERE {p}")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn planner_configs_agree(
        activity in proptest::collection::vec((0..4usize, 0..2usize), 0..7),
        routing in proptest::collection::vec((0..4usize, 0..4usize), 0..6),
        sql in query_strategy(),
    ) {
        let db = setup(&activity, &routing);
        let txn = db.begin_read();
        let bound = bind_select(&txn, &parse_select(&sql).unwrap()).unwrap();
        let configs = [
            ExecOptions { enable_index_scan: true, enable_hash_join: true, ..Default::default() },
            ExecOptions { enable_index_scan: true, enable_hash_join: false, ..Default::default() },
            ExecOptions { enable_index_scan: false, enable_hash_join: true, ..Default::default() },
            ExecOptions { enable_index_scan: false, enable_hash_join: false, ..Default::default() },
            // The same four join/access configs again, parallelized: the
            // morsel-driven path must agree with every serial plan shape.
            ExecOptions { enable_index_scan: true, enable_hash_join: true, ..Default::default() }
                .with_parallelism(4, 2),
            ExecOptions { enable_index_scan: false, enable_hash_join: false, ..Default::default() }
                .with_parallelism(4, 2),
        ];
        let mut last: Option<Vec<Vec<Value>>> = None;
        for opts in configs {
            let (mut r, _) = execute_select_with(&txn, &bound, opts).unwrap();
            r.rows.sort();
            if let Some(prev) = &last {
                prop_assert_eq!(prev, &r.rows, "plans disagree for {}", &sql);
            }
            last = Some(r.rows);
        }
    }
}

#[test]
fn dml_roundtrip_through_sql_only() {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE jobs (sid TEXT NOT NULL, job_id INT NOT NULL, state TEXT NOT NULL, \
         cpu FLOAT) SOURCE COLUMN sid",
    )
    .unwrap();
    execute_statement(&db, "CREATE INDEX ji ON jobs (job_id)").unwrap();
    execute_statement(
        &db,
        "INSERT INTO jobs (sid, job_id, state, cpu) VALUES \
         ('n1', 1, 'queued', NULL), ('n1', 2, 'queued', NULL), ('n2', 3, 'running', 0.5)",
    )
    .unwrap();
    execute_statement(
        &db,
        "UPDATE jobs SET state = 'running', cpu = 1.5 WHERE job_id = 1",
    )
    .unwrap();
    execute_statement(&db, "DELETE FROM jobs WHERE state = 'queued'").unwrap();
    let r = execute_statement(&db, "SELECT job_id, state, cpu FROM jobs ORDER BY job_id").unwrap();
    match r {
        StatementResult::Rows(q) => {
            assert_eq!(
                q.rows,
                vec![
                    vec![Value::Int(1), Value::text("running"), Value::Float(1.5)],
                    vec![Value::Int(3), Value::text("running"), Value::Float(0.5)],
                ]
            );
        }
        other => panic!("{other:?}"),
    }
    // Aggregates over the survivors.
    let r = execute_statement(&db, "SELECT COUNT(*), SUM(cpu), MIN(job_id) FROM jobs").unwrap();
    match r {
        StatementResult::Rows(q) => {
            assert_eq!(
                q.rows[0],
                vec![Value::Int(2), Value::Float(2.0), Value::Int(1)]
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn between_like_predicates_roundtrip() {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE t (sid TEXT NOT NULL, n INT NOT NULL) SOURCE COLUMN sid",
    )
    .unwrap();
    for i in 0..10 {
        execute_statement(&db, &format!("INSERT INTO t VALUES ('s', {i})")).unwrap();
    }
    let r = execute_statement(
        &db,
        "SELECT COUNT(*) FROM t WHERE n BETWEEN 2 AND 5 AND n NOT IN (3)",
    )
    .unwrap();
    match r {
        StatementResult::Rows(q) => assert_eq!(q.scalar(), Some(&Value::Int(3))),
        other => panic!("{other:?}"),
    }
    let r = execute_statement(
        &db,
        "SELECT COUNT(*) FROM t WHERE n NOT BETWEEN 2 AND 5 OR n = 4",
    )
    .unwrap();
    match r {
        StatementResult::Rows(q) => assert_eq!(q.scalar(), Some(&Value::Int(7))),
        other => panic!("{other:?}"),
    }
}
