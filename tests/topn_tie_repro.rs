//! Regression: TopNIndex fast path vs general Sort+Limit tie order.
//!
//! When the residual filter carries an in-list probe candidate on
//! another indexed column, the general plan streams rows in *key*
//! order while the ordered index walk visits postings in *slot*
//! order — the stable sort's ties then resolve differently. Lowering
//! must decline the walk whenever the cost model would pick a probe
//! (the analyzer re-derives the same obligation under `TRAC021`), so
//! both plans here take the probe and return identical bytes.

use trac::exec::{execute_select_with, execute_statement};
use trac::expr::bind_select;
use trac::plan::ExecOptions;
use trac::sql::parse_select;
use trac::storage::Database;

#[test]
fn topn_fast_path_matches_general_plan_on_ties() {
    let db = Database::new();
    execute_statement(
        &db,
        "CREATE TABLE t (s TEXT NOT NULL, n INT NOT NULL) SOURCE COLUMN s",
    )
    .unwrap();
    execute_statement(&db, "CREATE INDEX ts ON t (s)").unwrap();
    execute_statement(&db, "CREATE INDEX tn ON t (n)").unwrap();
    // Insertion (slot) order: 'b' first, then 'a'; both tie on n = 5.
    execute_statement(&db, "INSERT INTO t VALUES ('b', 5)").unwrap();
    execute_statement(&db, "INSERT INTO t VALUES ('a', 5)").unwrap();

    let sql = "SELECT s FROM t WHERE s IN ('a', 'b') ORDER BY n LIMIT 1";
    let txn = db.begin_read();
    let q = bind_select(&txn, &parse_select(sql).unwrap()).unwrap();

    let on = ExecOptions::default();
    let off = ExecOptions {
        fast_paths: false,
        ..Default::default()
    };
    let (fast, fast_info) = execute_select_with(&txn, &q, on).unwrap();
    let (general, gen_info) = execute_select_with(&txn, &q, off).unwrap();
    eprintln!("fast plan: {fast_info:?}");
    eprintln!("general plan: {gen_info:?}");
    assert_eq!(
        fast.rows, general.rows,
        "fast path diverged from general plan"
    );
}
