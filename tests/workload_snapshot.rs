//! Pins the observable behaviour of the 12 sample workload queries:
//! result columns, result rows, and the recency-analysis guarantee must
//! stay byte-identical across executor refactors.
//!
//! The expected block below was captured from the pre-plan-IR executor
//! (the monolithic `execute_select_with` pipeline); the streaming
//! operator executor must reproduce it exactly.

use trac::core::{RecencyPlan, RelevanceConfig};
use trac::expr::bind_select;
use trac::sql::parse_select;
use trac::storage::Database;
use trac::workload::{
    load_eval_db, load_paper_tables, load_section_42_tables, EvalConfig, PAPER_QUERIES,
};
use trac_analyze::{PAPER_SAMPLE_QUERIES, SECTION42_SAMPLE_QUERIES};

/// One line per query: `name | guarantee | columns | rows`.
fn snapshot_line(db: &Database, name: &str, sql: &str, opts: trac::plan::ExecOptions) -> String {
    let txn = db.begin_read();
    let stmt = parse_select(sql).expect(name);
    let bound = bind_select(&txn, &stmt).expect(name);
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default()).expect(name);
    let result = trac::exec::execute_select_with(&txn, &bound, opts)
        .expect(name)
        .0;
    format!(
        "{name} | {} | {} | {:?}",
        plan.guarantee,
        result.columns.join(","),
        result.rows
    )
}

fn actual_snapshot(opts: trac::plan::ExecOptions) -> Vec<String> {
    let mut lines = Vec::new();
    let paper = load_paper_tables().expect("paper tables");
    for (name, sql) in PAPER_SAMPLE_QUERIES {
        lines.push(snapshot_line(&paper.db, name, sql, opts));
    }
    let s42 = load_section_42_tables(&["myScheduler", "mx", "my"]).expect("section 4.2 tables");
    for (name, sql) in SECTION42_SAMPLE_QUERIES {
        lines.push(snapshot_line(&s42.db, name, sql, opts));
    }
    // Same fixture scale the analyzer sweep uses.
    let eval = load_eval_db(&EvalConfig::new(200, 20)).expect("eval db");
    for (name, sql) in PAPER_QUERIES {
        lines.push(snapshot_line(&eval.db, &format!("eval/{name}"), sql, opts));
    }
    lines
}

/// Captured from the pre-refactor executor; do not edit by hand.
const EXPECTED: &str = "\
paper/Q1 | minimum | mach_id | [[Text(\"m1\")]]
paper/Q2 | upper bound | mach_id | [[Text(\"m3\")]]
paper/quickstart | minimum | mach_id,value | [[Text(\"m1\"), Text(\"idle\")], [Text(\"m3\"), Text(\"idle\")]]
paper/ordered | minimum | mach_id | [[Text(\"m1\")], [Text(\"m3\")]]
paper/unfiltered | minimum | mach_id | [[Text(\"m1\")], [Text(\"m2\")], [Text(\"m3\")]]
paper/refined | minimum | mach_id | [[Text(\"m1\")], [Text(\"m3\")]]
section42/Q3 | minimum | runningMachineId | []
section42/Q4 | upper bound | runningMachineId | []
eval/Q1 | minimum | count | [[Int(20)]]
eval/Q2 | minimum | count | [[Int(76)]]
eval/Q3 | upper bound | count | [[Int(22)]]
eval/Q4 | upper bound | count | [[Int(74)]]";

#[test]
fn workload_queries_are_byte_identical_to_pre_refactor_snapshot() {
    assert_eq!(
        actual_snapshot(trac::plan::ExecOptions::default()).join("\n"),
        EXPECTED
    );
}

/// The morsel-driven parallel path must reproduce the identical
/// snapshot: `Gather`'s deterministic morsel-order merge makes parallel
/// execution byte-identical to serial, even at 8 workers over these
/// small fixtures (every query then runs with more workers than
/// morsels, exercising the worker-clamping path too).
#[test]
fn workload_snapshot_is_byte_identical_at_threads_8() {
    let opts = trac::plan::ExecOptions::default().with_parallelism(8, 16);
    assert_eq!(actual_snapshot(opts).join("\n"), EXPECTED);
}

/// `paper/refined` reaches its Minimum guarantee (pinned above) through
/// the refinement pass, not the plain Theorem 3 preconditions: its
/// `mach_id <> value` term is mixed, and only the vacuity proof upgrades
/// the Corollary 3 upper bound.
#[test]
fn refined_sample_minimum_comes_from_the_refinement_pass() {
    let paper = load_paper_tables().expect("paper tables");
    let txn = paper.db.begin_read();
    let (name, sql) = PAPER_SAMPLE_QUERIES
        .iter()
        .find(|(n, _)| *n == "paper/refined")
        .expect("refined sample present");
    let stmt = parse_select(sql).expect(name);
    let bound = bind_select(&txn, &stmt).expect(name);
    let plan = RecencyPlan::build(&txn, &bound, RelevanceConfig::default()).expect(name);
    assert_eq!(plan.subqueries.len(), 1);
    assert!(
        plan.subqueries[0].refined,
        "upgrade must be flagged refined"
    );
}
