//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Backs [`Bytes`]/[`BytesMut`] with a plain `Vec<u8>` plus a cursor —
//! no refcounted zero-copy slicing, which the snapshot reader/writer in
//! `trac-storage` does not need. Integer accessors are big-endian, the
//! real crate's default, so snapshot files keep their on-disk layout.

use std::ops::Deref;

/// Read side of a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Consumes `n` bytes and returns them as an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain (matches the real crate).
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Consumes a big-endian `i64`.
    fn get_i64(&mut self) -> i64;
    /// Consumes a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

/// Write side of a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
}

/// An immutable byte buffer consumed front-to-back.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.remaining() >= n,
            "buffer underflow: need {n}, have {}",
            self.remaining()
        );
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    fn get_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N));
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.get_array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.get_array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.get_array())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.get_array())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.get_array())
    }
}

/// A growable, append-only byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity hint.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i64(-5);
        w.put_f64(2.5);
        w.put_slice(b"tail");
        let mut r = Bytes::from(w.as_ref().to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 300);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_i64(), -5);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.remaining(), 4);
        assert_eq!(&r.copy_to_bytes(4)[..], b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::with_capacity(2);
        w.put_u16(0x0102);
        assert_eq!(w.as_ref(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::from(vec![1]);
        r.get_u16();
    }
}
