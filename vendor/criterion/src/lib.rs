//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements just enough of the API for the `trac-bench` benches to
//! compile and produce honest (if statistically unsophisticated) numbers:
//! each benchmark is warmed up once, then timed over a fixed batch and
//! reported as mean time per iteration. There is no outlier analysis, no
//! HTML report, and no saved baselines — this harness exists so `cargo
//! bench` works in a container with no registry access.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a harness with default settings.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!(
            "bench {}/{id}: {} ns/iter ({} iters)",
            self.name, per_iter, b.iters
        );
    }
}

/// Timer handle handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations (plus one
    /// untimed warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Opaque value sink preventing the optimizer from deleting the benched
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warmup + 5 timed iterations.
        assert_eq!(calls, 6);
    }

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("plain", "Q1").to_string(), "plain/Q1");
    }
}
