//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly rather than
//! `Result`s. A poisoned std lock is recovered with `into_inner` — the
//! same "poisoning does not exist" semantics `parking_lot` documents.
//! The real crate's perf characteristics (adaptive spinning, tiny lock
//! words) are obviously not reproduced; correctness is identical.

use std::sync;

/// A mutual-exclusion lock whose guard acquisition never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guard acquisition never fails.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: a panic while holding the lock must not
        // prevent later acquisition.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
