//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Reimplements the subset of proptest's API that this workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_recursive`, `prop_oneof!` (plain and weighted), `Just`,
//! `any::<bool>()`, integer-range and string-pattern strategies,
//! [`collection::vec`], [`sample::subsequence`], and the [`proptest!`] /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case index;
//!   inputs are printed by the assertion messages the tests already carry.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name (FNV-1a), so failures reproduce exactly across
//!   runs — there is no persistence file because there is no need for one.
//! * **String patterns** support character classes with optional bounded
//!   repetition (`"[a-c]"`, `"[x-z]{1,3}"`), not full regex.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration, selected with
    /// `#![proptest_config(ProptestConfig { cases: N, ..Default::default() })]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was discarded by `prop_assume!`; it does not count
        /// toward the `cases` quota and is not a failure.
        Reject(String),
        /// The case failed an assertion or returned an error.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection (assumption not met) with the given message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    /// Deterministic RNG driving all value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// FNV-1a over a test's name: the per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into composite nodes, applied
        /// up to `depth` levels. The size/branch hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let next = recurse(current).boxed();
                // Mix leaves back in so shallow values stay reachable at
                // every level.
                current = Union::new(vec![(1, leaf.clone()), (2, next)]).boxed();
            }
            current
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among strategies of a common value type; what
    /// `prop_oneof!` expands to.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start);
                    self.start.wrapping_add(rng.below(span as u64) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.abs_diff(start) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.below(span + 1)
                    };
                    start.wrapping_add(off as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i32, i64, isize, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// One parsed element of a string pattern: a set of candidate chars
    /// and a repetition count range.
    struct PatternAtom {
        choices: Vec<char>,
        min: u32,
        max: u32,
    }

    /// Parses the supported pattern subset: literal characters and
    /// character classes `[a-z]`, either followed by `{n}` or `{m,n}`.
    fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
        let mut atoms = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let choices = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pat:?}"),
                        Some(']') => break,
                        Some('-') => {
                            let lo = prev
                                .take()
                                .unwrap_or_else(|| panic!("dangling '-' in pattern {pat:?}"));
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling '-' in pattern {pat:?}"));
                            set.pop();
                            for ch in lo..=hi {
                                set.push(ch);
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pat:?}");
                set
            } else {
                vec![c]
            };
            let (mut min, mut max) = (1u32, 1u32);
            if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                let parse_u32 = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .unwrap_or_else(|_| panic!("bad repetition {spec:?} in pattern {pat:?}"))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        min = parse_u32(lo);
                        max = parse_u32(hi);
                    }
                    None => {
                        min = parse_u32(&spec);
                        max = min;
                    }
                }
                assert!(min <= max, "bad repetition bounds in pattern {pat:?}");
            }
            atoms.push(PatternAtom { choices, min, max });
        }
        atoms
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in parse_pattern(self) {
                let count = atom.min + rng.below(u64::from(atom.max - atom.min) + 1) as u32;
                for _ in 0..count {
                    out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A collection-size specification: an exact size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        /// Draws a size from the range.
        pub fn pick(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }

        /// The inclusive upper bound.
        pub fn max(self) -> usize {
            self.max
        }

        /// Clamps the bounds to `cap` (used by `sample::subsequence`).
        pub fn clamp_to(self, cap: usize) -> SizeRange {
            SizeRange {
                min: self.min.min(cap),
                max: self.max.min(cap),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing a random subsequence of a fixed vector.
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.size.clamp_to(self.items.len()).pick(rng);
            // Reservoir-free selection: walk the items, keeping each with
            // the probability needed to end at exactly `n` picks.
            let mut out = Vec::with_capacity(n);
            let mut needed = n;
            for (i, item) in self.items.iter().enumerate() {
                let left = self.items.len() - i;
                if needed > 0 && rng.below(left as u64) < needed as u64 {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    /// Generates in-order subsequences of `items` with length in `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }
}

/// Weighted or unweighted choice among strategies producing one value
/// type: `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            $(let $arg = $strat;)+
            let strategies = ($($arg,)+);
            let ($($arg,)+) = &strategies;
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while passed < config.cases {
                case += 1;
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "{} rejected too many inputs ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "property {} failed at case {case} (seed {seed:#x}): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($config) $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{seed_for, TestRng};

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::from_seed(3);
        use crate::strategy::Strategy as _;
        for _ in 0..100 {
            let s = "[a-c]".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(("a"..="c").contains(&s.as_str()), "{s}");
            let t = "[x-z]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&t.len()), "{t}");
            assert!(t.chars().all(|c| ('x'..='z').contains(&c)), "{t}");
        }
    }

    #[test]
    fn subsequence_sizes_and_order() {
        let mut rng = TestRng::from_seed(9);
        let strat = crate::sample::subsequence(vec![1, 2, 3], 1..=3);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            assert_eq!(s, sorted, "subsequence preserves order");
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::from_seed(11);
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true draws, got {hits}");
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(0..10i64, 0..5),
            flag in any::<bool>(),
        ) {
            prop_assume!(v.len() != 4);
            prop_assert!(v.iter().all(|x| (0..10).contains(x)), "out of range {v:?}");
            if flag {
                prop_assert_eq!(v.len(), v.len());
            }
        }

        #[test]
        fn recursive_strategies_terminate(depth_probe in nested()) {
            prop_assert!(depth_probe <= 4, "depth {} exceeds bound", depth_probe);
        }
    }

    /// Nesting depth counter: leaves are 0, each recursion adds 1.
    fn nested() -> impl Strategy<Value = u32> {
        Just(0u32).prop_recursive(4, 8, 2, |inner| inner.prop_map(|d| d + 1))
    }
}
