//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal
//! API-compatible stubs (see `vendor/README.md`). This one covers exactly
//! what the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::random_range` over integer ranges.
//!
//! The generator is SplitMix64 — a tiny, well-studied 64-bit mixer that is
//! more than adequate for the deterministic workload/simulation seeding
//! done here. It is **not** a drop-in statistical replacement for the real
//! `StdRng` (ChaCha12): sequences differ, so anything asserting on exact
//! sampled values would need re-blessing if the real crate returns.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, the only high-level API the workspace uses.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly samplable from ranges. Mirrors the shape of
/// rand's `SampleUniform` so that `Range<T>: SampleRange<T>` is a single
/// blanket impl — which is what lets type inference flow from how the
/// sampled value is *used* (e.g. as a slice index) back into unsuffixed
/// range literals like `0..2`.
pub trait SampleUniform: Copy + PartialOrd {
    /// `hi - lo` as an unsigned width (`hi >= lo`).
    fn span_to(self, hi: Self) -> u64;
    /// `self + off`, where `off` is within a previously computed span.
    fn offset(self, off: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn span_to(self, hi: $t) -> u64 {
                hi.abs_diff(self) as u64
            }
            fn offset(self, off: u64) -> $t {
                self.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_uniform!(i32, i64, isize, u32, u64, usize);

/// Uniform draw from `[0, n)` via Lemire-style widening multiply (the
/// modulo bias at these range sizes is irrelevant for simulation seeding,
/// but the multiply is just as cheap).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        let span = self.start.span_to(self.end);
        self.start.offset(below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in random_range");
        let span = start.span_to(end);
        let off = if span == u64::MAX {
            rng.next_u64()
        } else {
            below(rng, span + 1)
        };
        start.offset(off)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17i64);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=5usize);
            assert!(w <= 5);
            let neg = rng.random_range(-10..=-1i64);
            assert!((-10..=-1).contains(&neg));
        }
    }

    #[test]
    fn both_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
